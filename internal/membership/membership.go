// Package membership owns the gateway's cluster model end-to-end: a
// desired-state member table fed by registration (hpserve -announce
// self-registration with lease renewal) and by static seeding (the legacy
// -backends flag compiles into the same records), plus a reconciler that
// converges observed state — health probes, breaker state, queue depth,
// lease expiry — toward the desired set. The table publishes immutable
// epoch-stamped snapshots; routing reads a snapshot without any lock on
// the live table, so membership changes never serialise the data path.
//
// The split mirrors the agent/controller idiom: members declare
// themselves (desired state), the reconciler observes and converges
// (ejecting lease-expired members, re-admitting returners, draining
// durable members that stay down past the recovery window), and every
// consumer sees a consistent point-in-time view.
package membership

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Lifecycle events published through Config.OnEvent.
const (
	// EventRegistered: a new member announced itself (or was seeded).
	EventRegistered = "registered"
	// EventRenewed: an existing member's heartbeat renewed its lease.
	EventRenewed = "renewed"
	// EventDeregistered: a member deregistered itself (graceful shutdown)
	// or was removed by an operator.
	EventDeregistered = "deregistered"
	// EventLeaseExpired: a registered member missed its heartbeats and was
	// ejected by the reconciler.
	EventLeaseExpired = "lease_expired"
	// EventDrain: a member's jobs are being resubmitted to peers — it
	// deregistered, its lease expired, or it is durable and stayed down
	// past the recovery window.
	EventDrain = "drain"
)

// Observation is what one successful health probe saw.
type Observation struct {
	Durable  bool
	Queued   int
	QueueCap int
}

// Config tunes a Table. Zero values select the defaults noted per field.
type Config struct {
	// BreakerThreshold and BreakerCooldown configure each member's circuit
	// breaker (see Breaker).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// LeaseTTL is the default lease granted to a registration that does
	// not request one (default 10s). Static members have no lease.
	LeaseTTL time.Duration
	// RecoveryWindow is how long a durable member may stay down before the
	// reconciler drains its jobs to peers (<= 0 disables reconciler-driven
	// drains; deregistration and lease expiry still drain).
	RecoveryWindow time.Duration
	// SpillWatermark is the queue-occupancy fraction beyond which a probed
	// member counts as saturated (negative disables probe-derived
	// saturation).
	SpillWatermark float64
	// Now is the table's clock; nil selects time.Now. Tests inject a fake
	// clock to drive lease expiry deterministically.
	Now func() time.Time
	// Probe observes one member's health; nil disables probing (the
	// reconciler then only ticks breakers and expires leases). The gateway
	// injects its /healthz client call here.
	Probe func(ctx context.Context, url string) (Observation, error)
	// OnTransition receives every breaker transition (telemetry hook).
	OnTransition func(url string, from, to State)
	// OnEvent receives every membership lifecycle event (telemetry hook).
	OnEvent func(url, event string)
	// Drain is called — outside the table lock — when a member's jobs
	// should move to peers: on deregistration, on lease expiry, and when a
	// durable member stays down past RecoveryWindow.
	Drain func(url string)
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Member is one backend's record: identity and desired state (URL,
// durability, lease) plus the reconciler's observed state (breaker,
// queue occupancy, outage clock). Members are shared between snapshots —
// the snapshot fixes the set, not the state — and are internally locked.
type Member struct {
	// URL is the member's base URL; it is the member's identity.
	URL string
	// Static marks a member seeded from the -backends flag: it never
	// lease-expires and survives reconciliation until removed explicitly.
	Static bool

	br  *Breaker
	now func() time.Time
	// onTransition publishes breaker transitions (owning table's hook).
	onTransition func(url string, from, to State)

	mu sync.Mutex
	// durable is the member's last advertised durability: registration
	// spec first, then whatever /healthz probes report.
	durable bool
	// downSince is when the breaker last tripped closed -> open; the
	// recovery window is measured from it.
	downSince time.Time
	// leaseExpiry is when the member's registration lapses without a
	// heartbeat; zero for static members.
	leaseExpiry time.Time
	// queued/queueCap mirror the last probe's queue occupancy; saturated
	// is derived from them against the spill watermark, or set directly
	// by an observed 429 until the next successful probe.
	queued     int
	queueCap   int
	saturated  bool
	retryAfter int // last Retry-After hint this member attached to a 429
	// drained marks that the current outage's drain already fired, so the
	// reconciler drains once per outage; cleared when the member comes
	// back up.
	drained bool
}

// Status reports routing health: breaker closed, consecutive fails, and
// the durability flag.
func (m *Member) Status() (healthy bool, fails int, durable bool) {
	state, fails := m.br.Snapshot()
	m.mu.Lock()
	durable = m.durable
	m.mu.Unlock()
	return state == StateClosed, fails, durable
}

// BreakerState exposes the member's breaker state and failure count.
func (m *Member) BreakerState() (State, int) { return m.br.Snapshot() }

// noteTransition publishes one breaker transition and maintains the
// outage clock: downSince starts on closed->open only (half-open->open is
// the same outage continuing, not a new one), and a member coming back
// closed re-arms its drain.
func (m *Member) noteTransition(from, to State) {
	if from == to {
		return
	}
	m.mu.Lock()
	if from == StateClosed && to == StateOpen {
		m.downSince = m.now()
	}
	if to == StateClosed {
		m.drained = false
	}
	m.mu.Unlock()
	if m.onTransition != nil {
		m.onTransition(m.URL, from, to)
	}
}

// MarkDown records an observed failure against the breaker.
func (m *Member) MarkDown() { m.noteTransition(m.br.Fail()) }

// MarkUp records a successful probe or call, closing the breaker.
func (m *Member) MarkUp() { m.noteTransition(m.br.Success()) }

// MarkUpDurable re-admits the member and records whether it advertises a
// durable job store; only health probes carry that information.
func (m *Member) MarkUpDurable(durable bool) {
	m.mu.Lock()
	m.durable = durable
	m.mu.Unlock()
	m.noteTransition(m.br.Success())
}

// TickBreaker advances the breaker's open -> half-open timer; the
// reconciler calls it before each probe round.
func (m *Member) TickBreaker() { m.noteTransition(m.br.Tick()) }

// AllowProbe reports whether a health probe should be sent now.
func (m *Member) AllowProbe() bool { return m.br.AllowProbe() }

// NoteQueue folds one successful health probe's queue occupancy into the
// saturation verdict. It also clears any sticky 429-derived saturation:
// the probe is fresher evidence than the rejection.
func (m *Member) NoteQueue(queued, capacity int, watermark float64) {
	m.mu.Lock()
	m.queued, m.queueCap = queued, capacity
	m.saturated = watermark >= 0 && capacity > 0 &&
		float64(queued) >= watermark*float64(capacity)
	m.mu.Unlock()
}

// MarkSaturated records an observed 429: the member is at its admission
// limits regardless of what the last probe saw. Sticky until the next
// successful probe re-derives the verdict.
func (m *Member) MarkSaturated(retryAfter int) {
	m.mu.Lock()
	m.saturated = true
	if retryAfter > 0 {
		m.retryAfter = retryAfter
	}
	m.mu.Unlock()
}

// LoadStatus reports the member's saturation verdict and last observed
// queue length.
func (m *Member) LoadStatus() (saturated bool, queued int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.saturated, m.queued
}

// Recoverable reports whether a failed call against the member should be
// waited out rather than failed over: it advertises a durable job store
// and its outage is younger than window.
func (m *Member) Recoverable(window time.Duration) bool {
	if window <= 0 {
		return false
	}
	state, _ := m.br.Snapshot()
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.durable && state != StateClosed && m.now().Sub(m.downSince) < window
}

// LeaseRemaining reports how long until the member's lease lapses
// (0 for static members, negative when already expired).
func (m *Member) LeaseRemaining() time.Duration {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.leaseExpiry.IsZero() {
		return 0
	}
	return m.leaseExpiry.Sub(m.now())
}

// leaseExpired reports whether a registered member's lease has lapsed.
func (m *Member) leaseExpired(now time.Time) bool {
	if m.Static {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return now.After(m.leaseExpiry)
}

// renewLease extends the member's lease to now+ttl.
func (m *Member) renewLease(now time.Time, ttl time.Duration) {
	m.mu.Lock()
	m.leaseExpiry = now.Add(ttl)
	m.mu.Unlock()
}

// setDurableHint records a registration's durability claim. A probe's
// evidence later overrides it, but until the first probe lands the claim
// lets the recovery window engage for a freshly announced durable member.
func (m *Member) setDurableHint(durable bool) {
	m.mu.Lock()
	m.durable = durable
	m.mu.Unlock()
}

// shouldDrain decides (and latches) the reconciler's drain verdict for a
// durable member down past the recovery window: true at most once per
// outage.
func (m *Member) shouldDrain(now time.Time, window time.Duration) bool {
	state, _ := m.br.Snapshot()
	if state == StateClosed || window <= 0 {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.durable || m.drained || m.downSince.IsZero() {
		return false
	}
	if now.Sub(m.downSince) < window {
		return false
	}
	m.drained = true
	return true
}

// Snapshot is an immutable view of the member set at one epoch. The set
// is fixed; the Members' observed state keeps evolving (they are the live
// records). Routing holds a snapshot across a whole decision so the set
// cannot shift under it.
type Snapshot struct {
	// Epoch increments on every membership change (add, remove); state
	// changes on existing members do not bump it.
	Epoch   uint64
	Members []*Member // sorted by URL
	byURL   map[string]*Member
}

// Get returns the member with the given URL, if present.
func (s *Snapshot) Get(url string) (*Member, bool) {
	m, ok := s.byURL[url]
	return m, ok
}

// URLs returns the member URLs in sorted order.
func (s *Snapshot) URLs() []string {
	out := make([]string, len(s.Members))
	for i, m := range s.Members {
		out[i] = m.URL
	}
	return out
}

// Table is the desired-state member table plus its reconciler. All
// mutation goes through Register/Add/Deregister/Remove and Reconcile;
// readers take snapshots.
type Table struct {
	cfg Config

	mu      sync.Mutex
	members map[string]*Member
	epoch   uint64

	snap atomic.Pointer[Snapshot]
}

// New returns an empty Table.
func New(cfg Config) *Table {
	t := &Table{
		cfg:     cfg.withDefaults(),
		members: make(map[string]*Member),
	}
	t.snap.Store(&Snapshot{byURL: map[string]*Member{}})
	return t
}

func (t *Table) newMember(url string, static bool) *Member {
	return &Member{
		URL:          url,
		Static:       static,
		br:           NewBreaker(t.cfg.BreakerThreshold, t.cfg.BreakerCooldown),
		now:          t.cfg.Now,
		onTransition: t.cfg.OnTransition,
	}
}

// rebuildLocked bumps the epoch and publishes a fresh snapshot. Caller
// holds t.mu.
func (t *Table) rebuildLocked() {
	t.epoch++
	s := &Snapshot{
		Epoch:   t.epoch,
		Members: make([]*Member, 0, len(t.members)),
		byURL:   make(map[string]*Member, len(t.members)),
	}
	for url, m := range t.members {
		s.Members = append(s.Members, m)
		s.byURL[url] = m
	}
	sort.Slice(s.Members, func(i, k int) bool { return s.Members[i].URL < s.Members[k].URL })
	t.snap.Store(s)
}

// Snapshot returns the current epoch-stamped member set.
func (t *Table) Snapshot() *Snapshot { return t.snap.Load() }

// Get returns the live member with the given URL, if present.
func (t *Table) Get(url string) (*Member, bool) { return t.Snapshot().Get(url) }

// Add seeds a static member (idempotent); it starts healthy and never
// lease-expires. Reports whether the member was new.
func (t *Table) Add(url string) bool {
	t.mu.Lock()
	if _, ok := t.members[url]; ok {
		t.mu.Unlock()
		return false
	}
	t.members[url] = t.newMember(url, true)
	t.rebuildLocked()
	t.mu.Unlock()
	t.event(url, EventRegistered)
	return true
}

// Register records (or renews) an announced member: a new URL joins the
// set with a lease of ttl (<= 0 selects Config.LeaseTTL), an existing one
// has its lease renewed and its durability hint refreshed. Registering a
// URL that exists as a static member renews nothing but updates the hint
// — the static record already never expires.
func (t *Table) Register(url string, durable bool, ttl time.Duration) (m *Member, renewed bool) {
	if ttl <= 0 {
		ttl = t.cfg.LeaseTTL
	}
	now := t.cfg.Now()
	t.mu.Lock()
	m, renewed = t.members[url]
	if !renewed {
		m = t.newMember(url, false)
		t.members[url] = m
		t.rebuildLocked()
	}
	t.mu.Unlock()
	m.setDurableHint(durable)
	if !m.Static {
		m.renewLease(now, ttl)
	}
	if renewed {
		t.event(url, EventRenewed)
	} else {
		t.event(url, EventRegistered)
	}
	return m, renewed
}

// Deregister removes a member (graceful shutdown or operator action) and
// drains its jobs to peers. Reports whether the member existed.
func (t *Table) Deregister(url string) bool {
	if !t.removeLocked(url) {
		return false
	}
	t.event(url, EventDeregistered)
	t.drain(url)
	return true
}

// Remove drops a member without draining: its jobs fail over lazily on
// their next poll (the legacy RemoveBackend semantics).
func (t *Table) Remove(url string) bool { return t.removeLocked(url) }

func (t *Table) removeLocked(url string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.members[url]; !ok {
		return false
	}
	delete(t.members, url)
	t.rebuildLocked()
	return true
}

func (t *Table) event(url, event string) {
	if t.cfg.OnEvent != nil {
		t.cfg.OnEvent(url, event)
	}
}

func (t *Table) drain(url string) {
	t.event(url, EventDrain)
	if t.cfg.Drain != nil {
		t.cfg.Drain(url)
	}
}

// Reconcile runs one convergence pass: expire leases (ejecting and
// draining lapsed members), tick breakers, probe every probeable member
// concurrently, and drain durable members that have stayed down past the
// recovery window. The gateway's health loop calls it periodically; tests
// call it directly.
func (t *Table) Reconcile(ctx context.Context) {
	now := t.cfg.Now()
	snap := t.Snapshot()

	// Desired-state pass: a member whose lease lapsed is no longer
	// desired; eject it and move its jobs before wasting a probe on it.
	for _, m := range snap.Members {
		if m.leaseExpired(now) {
			if t.removeLocked(m.URL) {
				t.event(m.URL, EventLeaseExpired)
				t.drain(m.URL)
			}
		}
	}

	// Observation pass over the post-expiry set.
	snap = t.Snapshot()
	var wg sync.WaitGroup
	for _, m := range snap.Members {
		wg.Add(1)
		go func(m *Member) {
			defer wg.Done()
			// An open breaker withholds the probe until its cooldown has
			// elapsed (tick flips it half-open); with the default zero
			// cooldown every probe goes through, as before.
			m.TickBreaker()
			if !m.AllowProbe() || t.cfg.Probe == nil {
				return
			}
			obs, err := t.cfg.Probe(ctx, m.URL)
			if err != nil {
				m.MarkDown()
			} else {
				m.MarkUpDurable(obs.Durable)
				m.NoteQueue(obs.Queued, obs.QueueCap, t.cfg.SpillWatermark)
			}
		}(m)
	}
	wg.Wait()

	// Convergence pass: a durable member that stayed down past the
	// recovery window is presumed gone; stop waiting and move its jobs.
	// (The member record stays — if it returns, a probe re-admits it.)
	for _, m := range snap.Members {
		if m.shouldDrain(t.cfg.Now(), t.cfg.RecoveryWindow) {
			t.drain(m.URL)
		}
	}
}

// Len reports the current member count.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.members)
}
