package membership

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeClock is a mutex-guarded manual clock injected via Config.Now so
// lease expiry and recovery windows can be driven deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// healthMap is a shared up/down switchboard backing the injected probe.
type healthMap struct {
	mu sync.Mutex
	up map[string]bool
}

func (h *healthMap) set(url string, up bool) {
	h.mu.Lock()
	h.up[url] = up
	h.mu.Unlock()
}

func (h *healthMap) flip(url string) {
	h.mu.Lock()
	h.up[url] = !h.up[url]
	h.mu.Unlock()
}

func (h *healthMap) probe(_ context.Context, url string) (Observation, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.up[url] {
		return Observation{Durable: true}, nil
	}
	return Observation{}, errors.New("down")
}

// TestReconcileConvergesUnderChurn is the convergence property test: from
// any random interleaving of register, deregister, probe-flap, clock
// advance, and reconcile, the table must converge — once churn stops and
// the desired set's leases are fresh — to exactly {static seeds} ∪
// {desired announced members}, all healthy, with no further epoch drift.
func TestReconcileConvergesUnderChurn(t *testing.T) {
	ctx := context.Background()
	const ttl = 10 * time.Second

	for seed := int64(0); seed < 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
			health := &healthMap{up: map[string]bool{}}

			tbl := New(Config{
				LeaseTTL: ttl,
				Now:      clk.Now,
				Probe:    health.probe,
				Drain:    func(string) {}, // drains may fire mid-churn; they must not wedge anything
			})

			static := "http://static-seed"
			health.set(static, true)
			tbl.Add(static)

			urls := make([]string, 5)
			for i := range urls {
				urls[i] = fmt.Sprintf("http://backend-%d", i)
			}
			pick := func() string { return urls[rng.Intn(len(urls))] }

			// Churn phase: arbitrary interleaving.
			for i := 0; i < 200; i++ {
				switch rng.Intn(5) {
				case 0:
					u := pick()
					tbl.Register(u, rng.Intn(2) == 0, ttl)
					health.set(u, true)
				case 1:
					tbl.Deregister(pick())
				case 2:
					health.flip(pick())
				case 3:
					clk.Advance(time.Duration(rng.Intn(7000)) * time.Millisecond)
				case 4:
					tbl.Reconcile(ctx)
				}
			}

			// Quiesce: everything reachable again, stale leases age out,
			// and only the desired subset re-announces.
			for _, u := range urls {
				health.set(u, true)
			}
			clk.Advance(ttl + time.Second)
			desired := map[string]bool{static: true}
			for i, u := range urls {
				if i%2 == 0 {
					tbl.Register(u, true, ttl)
					desired[u] = true
				}
			}
			tbl.Reconcile(ctx)
			tbl.Reconcile(ctx)

			snap := tbl.Snapshot()
			if len(snap.Members) != len(desired) {
				t.Fatalf("converged to %v, want exactly %d members %v", snap.URLs(), len(desired), desired)
			}
			for _, m := range snap.Members {
				if !desired[m.URL] {
					t.Fatalf("undesired member %s survived convergence", m.URL)
				}
				if healthy, _, _ := m.Status(); !healthy {
					t.Fatalf("member %s unhealthy after convergence", m.URL)
				}
			}

			// Stability: further reconciles with fresh state change nothing.
			epoch := snap.Epoch
			tbl.Reconcile(ctx)
			tbl.Reconcile(ctx)
			if got := tbl.Snapshot().Epoch; got != epoch {
				t.Fatalf("epoch drifted %d -> %d after convergence with no membership change", epoch, got)
			}
		})
	}
}

func TestLeaseExpiryEjectsAndDrains(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	var events, drains []string
	tbl := New(Config{
		LeaseTTL: 5 * time.Second,
		Now:      clk.Now,
		OnEvent:  func(url, ev string) { events = append(events, url+":"+ev) },
		Drain:    func(url string) { drains = append(drains, url) },
	})

	tbl.Add("http://static")
	tbl.Register("http://dyn", true, 0) // 0 selects LeaseTTL

	if m, _ := tbl.Get("http://dyn"); m.LeaseRemaining() != 5*time.Second {
		t.Fatalf("lease remaining %v, want 5s", m.LeaseRemaining())
	}

	// Heartbeat renews; nothing expires at the original deadline.
	clk.Advance(4 * time.Second)
	tbl.Register("http://dyn", true, 0)
	clk.Advance(2 * time.Second)
	tbl.Reconcile(context.Background())
	if tbl.Len() != 2 {
		t.Fatalf("renewed member expired early: %v", tbl.Snapshot().URLs())
	}

	// Missed heartbeats: the lease lapses, the member is ejected and
	// drained; the static seed never expires.
	clk.Advance(6 * time.Second)
	tbl.Reconcile(context.Background())
	snap := tbl.Snapshot()
	if len(snap.Members) != 1 || snap.Members[0].URL != "http://static" {
		t.Fatalf("post-expiry set %v, want only the static seed", snap.URLs())
	}
	if len(drains) != 1 || drains[0] != "http://dyn" {
		t.Fatalf("drains %v, want exactly [http://dyn]", drains)
	}
	want := []string{
		"http://static:registered",
		"http://dyn:registered",
		"http://dyn:renewed",
		"http://dyn:lease_expired",
		"http://dyn:drain",
	}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %q, want %q", i, events[i], want[i])
		}
	}
}

func TestRecoveryWindowDrainsOncePerOutage(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	health := &healthMap{up: map[string]bool{"http://durable": false}}
	var drains int
	tbl := New(Config{
		RecoveryWindow: 10 * time.Second,
		Now:            clk.Now,
		Probe:          health.probe,
		Drain:          func(string) { drains++ },
	})
	tbl.Add("http://durable")
	m, _ := tbl.Get("http://durable")
	m.setDurableHint(true)

	// Down, but inside the window: no drain, however many passes run.
	tbl.Reconcile(context.Background())
	clk.Advance(5 * time.Second)
	tbl.Reconcile(context.Background())
	if drains != 0 {
		t.Fatalf("drained %d times inside the recovery window", drains)
	}

	// Past the window: exactly one drain no matter how often we reconcile.
	clk.Advance(6 * time.Second)
	tbl.Reconcile(context.Background())
	tbl.Reconcile(context.Background())
	tbl.Reconcile(context.Background())
	if drains != 1 {
		t.Fatalf("drained %d times past the window, want exactly 1", drains)
	}

	// The member returns and goes down again: a fresh outage re-arms the
	// drain, and the window restarts from the new trip.
	health.set("http://durable", true)
	tbl.Reconcile(context.Background())
	health.set("http://durable", false)
	tbl.Reconcile(context.Background())
	clk.Advance(11 * time.Second)
	tbl.Reconcile(context.Background())
	if drains != 2 {
		t.Fatalf("drained %d times across two outages, want 2", drains)
	}

	if tbl.Len() != 1 {
		t.Fatal("recovery-window drain must not remove the member record")
	}
}

// TestSnapshotReadersVsReconciler exercises the lock-free read path under
// concurrent membership churn; run with -race.
func TestSnapshotReadersVsReconciler(t *testing.T) {
	health := &healthMap{up: map[string]bool{}}
	tbl := New(Config{
		LeaseTTL: 50 * time.Millisecond,
		Probe:    health.probe,
		Drain:    func(string) {},
	})
	for i := 0; i < 4; i++ {
		health.set(fmt.Sprintf("http://seed-%d", i), true)
		tbl.Add(fmt.Sprintf("http://seed-%d", i))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Readers: snapshot, iterate, and poke member state the way routing does.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := tbl.Snapshot()
				for _, m := range snap.Members {
					m.Status()
					m.LoadStatus()
					m.Recoverable(time.Second)
				}
				if len(snap.Members) > 0 {
					snap.Get(snap.Members[0].URL)
				}
			}
		}()
	}

	// Writers: registration churn and reconciliation racing the readers.
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			u := fmt.Sprintf("http://dyn-%d", i%8)
			health.set(u, i%3 != 0)
			tbl.Register(u, i%2 == 0, 0)
			if i%5 == 0 {
				tbl.Deregister(u)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			tbl.Reconcile(context.Background())
		}
	}()

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
