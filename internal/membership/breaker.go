package membership

import (
	"sync"
	"time"
)

// State is one of the classic circuit-breaker states. The gateway keeps
// the breaker advisory rather than blocking: an open member is routed
// last (not never), because a backend of last resort still beats shedding
// the job — the state machine's job is pacing probes and making the
// member's trajectory observable, not fencing it off.
type State int32

const (
	// StateClosed: the member is healthy and routed normally.
	StateClosed State = iota
	// StateOpen: consecutive failures reached the threshold; health
	// probes are withheld until the cooldown elapses so a struggling
	// member is not hammered back down every interval.
	StateOpen
	// StateHalfOpen: the cooldown elapsed; the next health probe (or
	// any proxied call) is the trial. Success closes the breaker, failure
	// reopens it and restarts the cooldown.
	StateHalfOpen
)

func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a per-member circuit breaker. The default configuration
// (threshold 1, cooldown 0) reproduces the gateway's original binary
// eject/re-admit behaviour exactly: one failure ejects, the next probe is
// always allowed, one success re-admits. Raising the threshold tolerates
// blips; raising the cooldown paces probes against a flapping member.
type Breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    State
	fails    int // consecutive failures since the last success
	openedAt time.Time
}

// NewBreaker returns a Breaker tripping open after threshold consecutive
// failures (minimum 1) and withholding probes for cooldown once open
// (negative clamps to 0).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown < 0 {
		cooldown = 0
	}
	return &Breaker{threshold: threshold, cooldown: cooldown}
}

// Fail records one observed failure. From closed, reaching the threshold
// trips the breaker open; from half-open, the trial failed and the breaker
// reopens (restarting the cooldown); from open it only counts.
func (b *Breaker) Fail() (from, to State) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	b.fails++
	switch b.state {
	case StateClosed:
		if b.fails >= b.threshold {
			b.state = StateOpen
			b.openedAt = time.Now()
		}
	case StateHalfOpen:
		b.state = StateOpen
		b.openedAt = time.Now()
	}
	return from, b.state
}

// Success records one observed success, closing the breaker from any
// state. A real proxied call succeeding against an open member is
// stronger evidence than any probe, so it closes the breaker too.
func (b *Breaker) Success() (from, to State) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	b.fails = 0
	b.state = StateClosed
	return from, b.state
}

// Tick advances open -> half-open once the cooldown has elapsed. The
// reconciler calls it before each probe round, making the periodic probe
// the breaker's trial request.
func (b *Breaker) Tick() (from, to State) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	if b.state == StateOpen && time.Since(b.openedAt) >= b.cooldown {
		b.state = StateHalfOpen
	}
	return from, b.state
}

// AllowProbe reports whether a health probe should be sent: always, except
// while the breaker is open and cooling down.
func (b *Breaker) AllowProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != StateOpen
}

// Snapshot returns the current state and consecutive-failure count.
func (b *Breaker) Snapshot() (State, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails
}
