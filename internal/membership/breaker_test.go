package membership

import (
	"testing"
	"time"
)

func TestBreakerThresholdAndTrial(t *testing.T) {
	br := NewBreaker(3, time.Hour)

	// Two failures stay under the threshold: still closed.
	for i := 0; i < 2; i++ {
		if _, to := br.Fail(); to != StateClosed {
			t.Fatalf("failure %d tripped the breaker early (state %v)", i+1, to)
		}
	}
	if from, to := br.Fail(); from != StateClosed || to != StateOpen {
		t.Fatalf("threshold failure transitioned %v -> %v, want closed -> open", from, to)
	}
	if state, fails := br.Snapshot(); state != StateOpen || fails != 3 {
		t.Fatalf("state %v fails %d after tripping, want open/3", state, fails)
	}

	// The cooldown has not elapsed: tick holds it open, probes withheld.
	if _, to := br.Tick(); to != StateOpen {
		t.Fatalf("tick before cooldown moved to %v", to)
	}
	if br.AllowProbe() {
		t.Fatal("probe allowed while open and cooling down")
	}

	// Success closes from any state and resets the failure run.
	if from, to := br.Success(); from != StateOpen || to != StateClosed {
		t.Fatalf("success transitioned %v -> %v, want open -> closed", from, to)
	}
	if _, fails := br.Snapshot(); fails != 0 {
		t.Fatalf("fails %d after success, want 0", fails)
	}
}

func TestBreakerHalfOpenTrialFailureReopens(t *testing.T) {
	br := NewBreaker(1, 10*time.Millisecond)
	br.Fail()
	time.Sleep(20 * time.Millisecond)
	if from, to := br.Tick(); from != StateOpen || to != StateHalfOpen {
		t.Fatalf("tick after cooldown transitioned %v -> %v, want open -> half-open", from, to)
	}
	if !br.AllowProbe() {
		t.Fatal("half-open breaker must allow the trial probe")
	}
	// The trial fails: back to open, cooldown restarted.
	if from, to := br.Fail(); from != StateHalfOpen || to != StateOpen {
		t.Fatalf("trial failure transitioned %v -> %v, want half-open -> open", from, to)
	}
	if _, to := br.Tick(); to != StateHalfOpen {
		// 10ms cooldown may elapse between fail and tick on a slow box;
		// poll briefly instead of asserting the immediate state.
		deadline := time.Now().Add(time.Second)
		for to != StateHalfOpen && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			_, to = br.Tick()
		}
		if to != StateHalfOpen {
			t.Fatalf("breaker never re-entered half-open after reopening")
		}
	}
}

func TestBreakerLegacyDefaultsSingleProbe(t *testing.T) {
	// threshold 1, cooldown 0 must reproduce the original binary
	// eject/re-admit behaviour: one failure ejects, the very next tick
	// re-arms the probe, one success re-admits.
	br := NewBreaker(0, -time.Second) // clamped to 1 and 0
	if _, to := br.Fail(); to != StateOpen {
		t.Fatal("first failure did not eject")
	}
	if _, to := br.Tick(); to != StateHalfOpen {
		t.Fatal("zero cooldown did not immediately allow the next probe")
	}
	if !br.AllowProbe() {
		t.Fatal("probe withheld under legacy defaults")
	}
	if _, to := br.Success(); to != StateClosed {
		t.Fatal("first success did not re-admit")
	}
}
