package gateway

import (
	"sync"
	"time"
)

// breakerState is one of the classic circuit-breaker states. The gateway
// keeps the breaker advisory rather than blocking: an open backend is
// routed last (not never), because a backend of last resort still beats
// shedding the job — the state machine's job is pacing probes and making
// the backend's trajectory observable, not fencing it off.
type breakerState int32

const (
	// breakerClosed: the backend is healthy and routed normally.
	breakerClosed breakerState = iota
	// breakerOpen: consecutive failures reached the threshold; health
	// probes are withheld until the cooldown elapses so a struggling
	// backend is not hammered back down every interval.
	breakerOpen
	// breakerHalfOpen: the cooldown elapsed; the next health probe (or
	// any proxied call) is the trial. Success closes the breaker, failure
	// reopens it and restarts the cooldown.
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-backend circuit breaker. The default configuration
// (threshold 1, cooldown 0) reproduces the gateway's original binary
// eject/re-admit behaviour exactly: one failure ejects, the next probe is
// always allowed, one success re-admits. Raising the threshold tolerates
// blips; raising the cooldown paces probes against a flapping backend.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures since the last success
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	if cooldown < 0 {
		cooldown = 0
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// fail records one observed failure. From closed, reaching the threshold
// trips the breaker open; from half-open, the trial failed and the breaker
// reopens (restarting the cooldown); from open it only counts.
func (b *breaker) fail() (from, to breakerState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	b.fails++
	switch b.state {
	case breakerClosed:
		if b.fails >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
		}
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
	return from, b.state
}

// success records one observed success, closing the breaker from any
// state. A real proxied call succeeding against an open backend is
// stronger evidence than any probe, so it closes the breaker too.
func (b *breaker) success() (from, to breakerState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	b.fails = 0
	b.state = breakerClosed
	return from, b.state
}

// tick advances open -> half-open once the cooldown has elapsed. The
// health loop calls it before each probe round, making the periodic probe
// the breaker's trial request.
func (b *breaker) tick() (from, to breakerState) {
	b.mu.Lock()
	defer b.mu.Unlock()
	from = b.state
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		b.state = breakerHalfOpen
	}
	return from, b.state
}

// allowProbe reports whether a health probe should be sent: always, except
// while the breaker is open and cooling down.
func (b *breaker) allowProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen
}

// snapshot returns the current state and consecutive-failure count.
func (b *breaker) snapshot() (breakerState, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.fails
}
