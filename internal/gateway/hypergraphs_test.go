package gateway

import (
	"bufio"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hyperpraw"
	"hyperpraw/client"
	"hyperpraw/internal/service"
	"hyperpraw/internal/telemetry"
)

const gwTinyHMetis = "6 8\n1 2 3\n2 4\n3 5 6\n1 7 8\n4 5\n6 7\n"

// newGraphBackend is newBackend plus access to the backend's service, so
// replication tests can inspect which backend's graph store received the
// arena.
func newGraphBackend(t *testing.T) (*httptest.Server, *service.Service) {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("backend shutdown: %v", err)
		}
	})
	return ts, svc
}

// scrapeGatewayMetric reads one unlabelled series from the gateway's
// /metrics exposition.
func scrapeGatewayMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("parsing %s value %q: %v", name, fields[1], err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// TestGatewayGraphReplication uploads a graph once to the gateway and
// watches it flow: the first by-reference submission replicates the arena
// to exactly the rendezvous-chosen backend, the second reuses that copy
// (no new replication), and DELETE clears the whole fleet.
func TestGatewayGraphReplication(t *testing.T) {
	tsA, svcA := newGraphBackend(t)
	tsB, svcB := newGraphBackend(t)
	urls := []string{tsA.URL, tsB.URL}
	backends := map[string]*service.Service{tsA.URL: svcA, tsB.URL: svcB}

	reg := telemetry.NewRegistry()
	g := New(Config{Backends: urls, HealthInterval: -1, Metrics: reg})
	t.Cleanup(g.Close)
	gw := httptest.NewServer(NewHandler(g))
	t.Cleanup(gw.Close)
	c := client.New(gw.URL, nil)
	ctx := testCtx(t)

	// Chunked upload through the gateway's own resource surface; a tiny
	// part size forces several PUTs through the resumable path.
	info, err := c.UploadHypergraph(ctx, strings.NewReader(gwTinyHMetis), "shared", 8)
	if err != nil {
		t.Fatal(err)
	}
	if g.Graphs().Stats().Known != 1 {
		t.Fatalf("gateway graphs known %d, want 1", g.Graphs().Stats().Known)
	}
	for u, svc := range backends {
		if n := svc.Graphs().Stats().Known; n != 0 {
			t.Fatalf("backend %s holds %d graphs before any reference", u, n)
		}
	}

	res, err := c.Partition(ctx, hyperpraw.PartitionRequest{
		Algorithm:    "aware",
		Machine:      hyperpraw.MachineSpec{Kind: "archer", Cores: 4},
		HypergraphID: info.ID,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 8 {
		t.Fatalf("parts %d, want 8", len(res.Parts))
	}

	// The arena landed on exactly the backend rendezvous ranks first for
	// this graph's fingerprint, and nowhere else.
	home := RendezvousOrder(urls, info.ID)[0]
	for u, svc := range backends {
		want := 0
		if u == home {
			want = 1
		}
		if n := svc.Graphs().Stats().Known; n != want {
			t.Fatalf("backend %s holds %d graphs, want %d", u, n, want)
		}
	}
	if n := scrapeGatewayMetric(t, gw.URL, "hpgate_graph_replications_total"); n != 1 {
		t.Fatalf("replications after first reference: %v, want 1", n)
	}

	// A second job against the same reference rides the replica already in
	// place: still one copy fleet-wide, no new replication.
	if _, err := c.Partition(ctx, hyperpraw.PartitionRequest{
		Algorithm:    "aware",
		Machine:      hyperpraw.MachineSpec{Kind: "archer", Cores: 4, Seed: 7},
		HypergraphID: info.ID,
	}); err != nil {
		t.Fatal(err)
	}
	if n := scrapeGatewayMetric(t, gw.URL, "hpgate_graph_replications_total"); n != 1 {
		t.Fatalf("replications after second reference: %v, want 1", n)
	}
	if n := backends[home].Graphs().Stats().Known; n != 1 {
		t.Fatalf("home backend holds %d graphs, want 1", n)
	}

	// DELETE through the gateway fans out: gateway and every backend end
	// up empty, and the reference is gone for future submissions.
	if err := c.DeleteHypergraph(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	if n := g.Graphs().Stats().Known; n != 0 {
		t.Fatalf("gateway still knows %d graphs after delete", n)
	}
	for u, svc := range backends {
		if n := svc.Graphs().Stats().Known; n != 0 {
			t.Fatalf("backend %s still knows %d graphs after delete", u, n)
		}
	}
}

// TestGatewayUnknownGraphReference asserts a reference nobody uploaded is
// refused with the envelope's 404, not routed into the fleet.
func TestGatewayUnknownGraphReference(t *testing.T) {
	ts := newBackend(t, nil)
	g := newGateway(t, ts.URL)
	gw := httptest.NewServer(NewHandler(g))
	t.Cleanup(gw.Close)

	_, err := client.New(gw.URL, nil).Submit(testCtx(t), hyperpraw.PartitionRequest{
		Algorithm:    "aware",
		Machine:      hyperpraw.MachineSpec{Kind: "archer", Cores: 4},
		HypergraphID: "deadbeefdeadbeefdeadbeefdeadbeef",
	})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusNotFound || apiErr.Code != hyperpraw.ErrCodeNotFound {
		t.Fatalf("unknown reference: %v", err)
	}
}

// TestGatewayJobsPagination pages the gateway job table through the same
// cursor contract the backend tier serves.
func TestGatewayJobsPagination(t *testing.T) {
	ts := newBackend(t, nil)
	g := newGateway(t, ts.URL)
	gw := httptest.NewServer(NewHandler(g))
	t.Cleanup(gw.Close)
	c := client.New(gw.URL, nil)
	ctx := testCtx(t)

	const jobs = 5
	for i := 0; i < jobs; i++ {
		if _, err := c.Partition(ctx, tinyWire(i)); err != nil {
			t.Fatal(err)
		}
	}

	var seen []string
	after := ""
	for pages := 0; ; pages++ {
		if pages > jobs {
			t.Fatal("pagination did not terminate")
		}
		page, err := c.ListJobs(ctx, client.JobsQuery{Limit: 2, After: after})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Jobs {
			seen = append(seen, j.ID)
		}
		if page.NextAfter == "" {
			break
		}
		after = page.NextAfter
	}
	if len(seen) != jobs {
		t.Fatalf("paged %d jobs, want %d: %v", len(seen), jobs, seen)
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] <= seen[i-1] {
			t.Fatalf("page order broken at %d: %v", i, seen)
		}
	}

	done, err := c.ListJobs(ctx, client.JobsQuery{State: hyperpraw.JobDone})
	if err != nil {
		t.Fatal(err)
	}
	if len(done.Jobs) != jobs {
		t.Fatalf("state=done jobs %d, want %d", len(done.Jobs), jobs)
	}
}
