package gateway

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hyperpraw"
	"hyperpraw/client"
	"hyperpraw/internal/service"
)

// tinyWire returns a partition request over a small hypergraph whose pin
// structure (and therefore fingerprint) varies with i, so tests can steer
// distinct routing keys deterministically.
func tinyWire(i int) hyperpraw.PartitionRequest {
	a := 3 + i%6                        // 3..8, never colliding with pins 1,2
	b := []int{5, 6, 7, 8, 1, 2}[i/6%6] // never colliding with pins 3,4
	return hyperpraw.PartitionRequest{
		Algorithm: "aware",
		Machine:   hyperpraw.MachineSpec{Kind: "archer", Cores: 4},
		HMetis:    fmt.Sprintf("3 8\n1 2 %d\n3 4 %d\n5 6 7 8\n", a, b),
	}
}

// fingerprintOf computes the routing key the gateway derives for a wire
// request, via the same parse path.
func fingerprintOf(t *testing.T, wire hyperpraw.PartitionRequest) string {
	t.Helper()
	req, err := service.ParseRequest(wire)
	if err != nil {
		t.Fatal(err)
	}
	return req.FingerprintKey()
}

// newBackend boots a real hpserve backend (service + HTTP handler) whose
// machine profiling can be gated shut to hold jobs mid-run.
func newBackend(t *testing.T, gate chan struct{}) *httptest.Server {
	t.Helper()
	profile := hyperpraw.Profile
	if gate != nil {
		profile = func(m *hyperpraw.Machine) hyperpraw.Environment {
			<-gate
			return hyperpraw.Profile(m)
		}
	}
	svc := service.New(service.Config{Workers: 2, ProfileFunc: profile})
	ts := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("backend shutdown: %v", err)
		}
	})
	return ts
}

func newGateway(t *testing.T, backends ...string) *Gateway {
	t.Helper()
	g := New(Config{Backends: backends, HealthInterval: -1})
	t.Cleanup(g.Close)
	return g
}

// wiresCovering picks perBackend wires routed to each of urls by scanning
// tinyWire's 36 variants against the rendezvous order. Backend URLs carry
// random httptest ports, so which backend a fixed fingerprint ranks first
// varies per run — selecting by rank makes the spread deterministic by
// construction.
func wiresCovering(t *testing.T, urls []string, perBackend int) []hyperpraw.PartitionRequest {
	t.Helper()
	need := make(map[string]int, len(urls))
	for _, u := range urls {
		need[u] = perBackend
	}
	var out []hyperpraw.PartitionRequest
	for i := 0; i < 36 && len(out) < perBackend*len(urls); i++ {
		w := tinyWire(i)
		top := RendezvousOrder(urls, fingerprintOf(t, w))[0]
		if need[top] > 0 {
			need[top]--
			out = append(out, w)
		}
	}
	if len(out) != perBackend*len(urls) {
		t.Fatalf("only %d of %d wires cover %v", len(out), perBackend*len(urls), urls)
	}
	return out
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

func TestRendezvousOrderStableUnderMembershipChange(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	keys := make([]string, 100)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}

	top := func(ms []string, key string) string { return RendezvousOrder(ms, key)[0] }

	// Every member appears exactly once in every ordering.
	for _, k := range keys {
		order := RendezvousOrder(members, k)
		if len(order) != len(members) {
			t.Fatalf("order for %s has %d members", k, len(order))
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("order for %s repeats %s", k, m)
			}
			seen[m] = true
		}
	}

	// Removing b remaps only the keys that ranked b first, and each of
	// those moves to its previous second choice.
	without := []string{members[0], members[2]}
	moved := 0
	for _, k := range keys {
		before := RendezvousOrder(members, k)
		after := top(without, k)
		if before[0] == members[1] {
			moved++
			if after != before[1] {
				t.Fatalf("%s: after removal routed to %s, want previous runner-up %s", k, after, before[1])
			}
		} else if after != before[0] {
			t.Fatalf("%s: unaffected key remapped from %s to %s", k, before[0], after)
		}
	}
	if moved == 0 || moved == len(keys) {
		t.Fatalf("degenerate key distribution: %d/%d keys on removed member", moved, len(keys))
	}

	// Re-adding b restores the original assignment for every key.
	restored := []string{members[2], members[1], members[0]} // order must not matter
	for _, k := range keys {
		if top(restored, k) != top(members, k) {
			t.Fatalf("%s: re-adding the member did not restore its routing", k)
		}
	}
}

func TestGatewayRoutesSameFingerprintToSameBackend(t *testing.T) {
	b0, b1 := newBackend(t, nil), newBackend(t, nil)
	urls := []string{b0.URL, b1.URL}
	g := newGateway(t, urls...)
	ctx := testCtx(t)

	used := map[string]bool{}
	for i, wire := range wiresCovering(t, urls, 3) {
		want := RendezvousOrder(urls, fingerprintOf(t, wire))[0]
		first, err := g.Submit(ctx, wire)
		if err != nil {
			t.Fatal(err)
		}
		second, err := g.Submit(ctx, wire)
		if err != nil {
			t.Fatal(err)
		}
		if first.Backend != second.Backend {
			t.Fatalf("wire %d: resubmission routed to %s, first went to %s", i, second.Backend, first.Backend)
		}
		if first.Backend != want {
			t.Fatalf("wire %d: routed to %s, rendezvous ranks %s first", i, first.Backend, want)
		}
		used[first.Backend] = true
	}
	if len(used) != 2 {
		t.Fatalf("wires covering both backends all routed to one: %v", used)
	}
}

func TestGatewayBatchSplitsAcrossBackends(t *testing.T) {
	b0, b1 := newBackend(t, nil), newBackend(t, nil)
	urls := []string{b0.URL, b1.URL}
	g := newGateway(t, urls...)
	gwServer := httptest.NewServer(NewHandler(g))
	t.Cleanup(gwServer.Close)
	c := client.New(gwServer.URL, nil)
	ctx := testCtx(t)

	reqs := wiresCovering(t, urls, 3)
	bad := tinyWire(0)
	bad.Algorithm = "quantum"
	reqs = append(reqs, bad)

	resp, err := c.SubmitBatch(ctx, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 6 || resp.Rejected != 1 {
		t.Fatalf("accepted %d rejected %d, want 6/1", resp.Accepted, resp.Rejected)
	}
	if resp.Jobs[6].Error == "" {
		t.Fatalf("invalid entry not rejected: %+v", resp.Jobs[6])
	}

	used := map[string]bool{}
	ids := map[string]bool{}
	for i, item := range resp.Jobs[:6] {
		if item.Job == nil {
			t.Fatalf("entry %d missing job handle: %s", i, item.Error)
		}
		if ids[item.Job.ID] {
			t.Fatalf("duplicate gateway job id %s", item.Job.ID)
		}
		ids[item.Job.ID] = true
		want := RendezvousOrder(urls, fingerprintOf(t, reqs[i]))[0]
		if item.Job.Backend != want {
			t.Fatalf("entry %d routed to %s, rendezvous ranks %s first", i, item.Job.Backend, want)
		}
		used[item.Job.Backend] = true
		res, err := c.Wait(ctx, item.Job.ID)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if len(res.Parts) == 0 {
			t.Fatalf("entry %d: empty result", i)
		}
	}
	if len(used) != 2 {
		t.Fatalf("batch of 6 distinct fingerprints used one backend: %v", used)
	}
}

// TestGatewayFailoverMidJob is the acceptance scenario: a backend dies
// while its job is still running, and the job completes anyway via
// failover to the surviving backend.
func TestGatewayFailoverMidJob(t *testing.T) {
	gate0, gate1 := make(chan struct{}), make(chan struct{})
	b0, b1 := newBackend(t, gate0), newBackend(t, gate1)
	// Unblock both profile gates at cleanup so backend shutdown can drain.
	gates := map[string]chan struct{}{b0.URL: gate0, b1.URL: gate1}
	released := map[string]bool{}
	release := func(url string) {
		if !released[url] {
			released[url] = true
			close(gates[url])
		}
	}
	t.Cleanup(func() {
		for url := range gates {
			release(url)
		}
	})

	g := newGateway(t, b0.URL, b1.URL)
	gwServer := httptest.NewServer(NewHandler(g))
	t.Cleanup(gwServer.Close)
	c := client.New(gwServer.URL, nil)
	ctx := testCtx(t)

	info, err := g.Submit(ctx, tinyWire(3))
	if err != nil {
		t.Fatal(err)
	}
	victim := info.Backend
	survivor := b1
	if victim == b1.URL {
		survivor = b0
	}
	// The victim's profile gate stays shut: its copy of the job is pinned
	// mid-run. The survivor is free to compute.
	release(survivor.URL)

	if victim == b0.URL {
		b0.CloseClientConnections()
		b0.Close()
	} else {
		b1.CloseClientConnections()
		b1.Close()
	}

	res, err := c.Wait(ctx, info.ID)
	if err != nil {
		t.Fatalf("job did not survive backend death: %v", err)
	}
	if len(res.Parts) != 8 {
		t.Fatalf("failover result has %d parts, want 8", len(res.Parts))
	}

	final, err := g.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != hyperpraw.JobDone {
		t.Fatalf("job status %s, want done", final.Status)
	}
	if final.Backend != survivor.URL {
		t.Fatalf("job finished on %s, want survivor %s", final.Backend, survivor.URL)
	}

	health := g.Health()
	if health.Status != "ok" {
		t.Fatalf("gateway health %q with a surviving backend", health.Status)
	}
	for _, b := range health.Backends {
		if b.URL == victim && b.Healthy {
			t.Fatalf("dead backend %s still marked healthy", victim)
		}
		if b.URL == survivor.URL && !b.Healthy {
			t.Fatalf("surviving backend %s marked unhealthy", survivor.URL)
		}
	}
	// Release the victim's gate last so its worker pool can drain in
	// cleanup (the service behind the closed HTTP server is still alive).
	release(victim)
}

// TestGatewaySSEFailover drives the progress stream through the gateway
// and kills the serving backend mid-stream: the stream must resume on the
// survivor and still terminate with a done frame.
func TestGatewaySSEFailover(t *testing.T) {
	gate0, gate1 := make(chan struct{}), make(chan struct{})
	b0, b1 := newBackend(t, gate0), newBackend(t, gate1)
	gates := map[string]chan struct{}{b0.URL: gate0, b1.URL: gate1}
	released := map[string]bool{}
	release := func(url string) {
		if !released[url] {
			released[url] = true
			close(gates[url])
		}
	}
	t.Cleanup(func() {
		for url := range gates {
			release(url)
		}
	})

	g := newGateway(t, b0.URL, b1.URL)
	gwServer := httptest.NewServer(NewHandler(g))
	t.Cleanup(gwServer.Close)
	c := client.New(gwServer.URL, nil)
	ctx := testCtx(t)

	info, err := g.Submit(ctx, tinyWire(7))
	if err != nil {
		t.Fatal(err)
	}
	victim, survivor := b0, b1
	if info.Backend == b1.URL {
		victim, survivor = b1, b0
	}
	release(survivor.URL)

	// Kill the victim once the stream is attached and idle on it.
	go func() {
		time.Sleep(200 * time.Millisecond)
		victim.CloseClientConnections()
		victim.Close()
	}()

	var events []hyperpraw.ProgressEvent
	err = c.StreamProgress(ctx, info.ID, 0, func(ev hyperpraw.ProgressEvent) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatalf("stream did not survive backend death: %v", err)
	}
	if len(events) < 2 {
		t.Fatalf("stream delivered %d events, want iterations plus a final", len(events))
	}
	final := events[len(events)-1]
	if !final.Final || final.Status != hyperpraw.JobDone {
		t.Fatalf("final frame %+v, want done", final)
	}
	for _, ev := range events {
		if ev.JobID != info.ID {
			t.Fatalf("frame carries job id %q, want gateway id %q", ev.JobID, info.ID)
		}
	}
	release(victim.URL)
}

func TestGatewayEjectionAndReadmission(t *testing.T) {
	var down atomic.Bool
	svc := service.New(service.Config{Workers: 1})
	inner := service.NewHandler(svc)
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, `{"error":"down for maintenance"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		flaky.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		svc.Shutdown(ctx) //nolint:errcheck
	})
	steady := newBackend(t, nil)
	urls := []string{flaky.URL, steady.URL}
	g := newGateway(t, urls...)
	ctx := testCtx(t)

	// Find a wire whose rendezvous primary is the flaky backend.
	wire := hyperpraw.PartitionRequest{}
	found := false
	for i := 0; i < 36 && !found; i++ {
		wire = tinyWire(i)
		found = RendezvousOrder(urls, fingerprintOf(t, wire))[0] == flaky.URL
	}
	if !found {
		t.Fatal("no test fingerprint ranks the flaky backend first")
	}

	down.Store(true)
	g.CheckBackends(ctx)
	for _, b := range g.Backends() {
		if b.URL == flaky.URL && b.Healthy {
			t.Fatal("failing backend not ejected by the health check")
		}
	}
	info, err := g.Submit(ctx, wire)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != steady.URL {
		t.Fatalf("job routed to ejected backend %s", info.Backend)
	}

	down.Store(false)
	g.CheckBackends(ctx)
	for _, b := range g.Backends() {
		if b.URL == flaky.URL && !b.Healthy {
			t.Fatal("recovered backend not re-admitted by the health check")
		}
	}
	info, err = g.Submit(ctx, wire)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != flaky.URL {
		t.Fatalf("job routed to %s after re-admission, want primary %s", info.Backend, flaky.URL)
	}
}

func TestGatewayNoBackends(t *testing.T) {
	g := newGateway(t)
	if _, err := g.Submit(testCtx(t), tinyWire(0)); err == nil {
		t.Fatal("submit with no backends succeeded")
	}
}

func TestGatewayBadRequest(t *testing.T) {
	b := newBackend(t, nil)
	g := newGateway(t, b.URL)
	wire := tinyWire(0)
	wire.Algorithm = "quantum"
	_, err := g.Submit(testCtx(t), wire)
	if err == nil {
		t.Fatal("bad algorithm accepted")
	}
	// The backend must not have been ejected by a client-side error.
	for _, st := range g.Backends() {
		if !st.Healthy {
			t.Fatalf("backend %s ejected by a bad request", st.URL)
		}
	}
}

// TestGateway404FailsOverWithoutEjecting covers the restarted-backend
// case: a backend that has forgotten a job (404) triggers a failover for
// that job but must not be ejected from routing — a job-level miss is not
// a node-level failure.
func TestGateway404FailsOverWithoutEjecting(t *testing.T) {
	var amnesia atomic.Bool
	svc := service.New(service.Config{Workers: 1})
	inner := service.NewHandler(svc)
	forgetful := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if amnesia.Load() && strings.HasPrefix(r.URL.Path, "/v1/jobs/") {
			http.Error(w, `{"error":"unknown job"}`, http.StatusNotFound)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		forgetful.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		svc.Shutdown(ctx) //nolint:errcheck
	})
	other := newBackend(t, nil)
	urls := []string{forgetful.URL, other.URL}
	g := newGateway(t, urls...)
	ctx := testCtx(t)

	// A wire whose rendezvous primary is the forgetful backend.
	var wire hyperpraw.PartitionRequest
	found := false
	for i := 0; i < 36 && !found; i++ {
		wire = tinyWire(i)
		found = RendezvousOrder(urls, fingerprintOf(t, wire))[0] == forgetful.URL
	}
	if !found {
		t.Fatal("no test fingerprint ranks the forgetful backend first")
	}
	info, err := g.Submit(ctx, wire)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != forgetful.URL {
		t.Fatalf("routed to %s, want %s", info.Backend, forgetful.URL)
	}

	amnesia.Store(true) // "restart": job table wiped, node still healthy
	after, err := g.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Backend != other.URL {
		t.Fatalf("forgotten job stayed on %s, want failover to %s", after.Backend, other.URL)
	}
	for _, st := range g.Backends() {
		if st.URL == forgetful.URL && !st.Healthy {
			t.Fatal("backend ejected by a job-level 404")
		}
	}
	res, err := g.waitResult(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 8 {
		t.Fatalf("failover result has %d parts", len(res.Parts))
	}
}

// waitResult polls Gateway.Result until the job settles (test helper).
func (g *Gateway) waitResult(ctx context.Context, id string) (*hyperpraw.JobResult, error) {
	for {
		res, info, err := g.Result(ctx, id)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		if info.Status == hyperpraw.JobFailed {
			return nil, fmt.Errorf("job failed: %s", info.Error)
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// TestGatewayDoneJobWithLostBackendErrs covers the settled-job case: once
// a result has been fetched (terminal, retained request dropped), losing
// the backend must surface an error on the next result poll — not an
// eternal "still pending".
func TestGatewayDoneJobWithLostBackendErrs(t *testing.T) {
	b := newBackend(t, nil)
	g := newGateway(t, b.URL)
	ctx := testCtx(t)

	info, err := g.Submit(ctx, tinyWire(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.waitResult(ctx, info.ID); err != nil {
		t.Fatal(err)
	}

	b.CloseClientConnections()
	b.Close()
	_, after, err := g.Result(ctx, info.ID)
	if err == nil {
		t.Fatal("result of a done job with a dead backend reported pending forever")
	}
	if after.Status != hyperpraw.JobDone {
		t.Fatalf("status %s, want the settled done", after.Status)
	}

	// The SSE path must likewise terminate with a final frame instead of
	// spinning on the dead backend.
	var events []hyperpraw.ProgressEvent
	if err := g.StreamEvents(ctx, info.ID, 0, func(ev hyperpraw.ProgressEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatalf("stream on settled job: %v", err)
	}
	if len(events) != 1 || !events[0].Final || events[0].Status != hyperpraw.JobDone {
		t.Fatalf("settled-job stream delivered %+v, want one final done frame", events)
	}
}

// TestGatewayRetentionStripsOldWires covers the fire-and-forget case: jobs
// that never turn terminal cannot be pruned, so beyond MaxJobs their
// retained wire requests (the memory-heavy part) are stripped instead.
func TestGatewayRetentionStripsOldWires(t *testing.T) {
	b := newBackend(t, nil)
	g := New(Config{Backends: []string{b.URL}, HealthInterval: -1, MaxJobs: 2})
	t.Cleanup(g.Close)
	ctx := testCtx(t)

	var ids []string
	for i := 0; i < 4; i++ {
		info, err := g.Submit(ctx, tinyWire(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	wireOf := func(id string) string {
		j, ok := g.job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.wire.Algorithm
	}
	if wireOf(ids[0]) != "" || wireOf(ids[1]) != "" {
		t.Fatal("over-cap jobs kept their retained requests")
	}
	if wireOf(ids[3]) == "" {
		t.Fatal("newest job lost its retained request")
	}
}

// TestGatewayRawHMetisUpload checks API parity with hpserve: the raw
// hMetis upload form (body + query parameters) must work through the
// gateway unchanged.
func TestGatewayRawHMetisUpload(t *testing.T) {
	b := newBackend(t, nil)
	g := newGateway(t, b.URL)
	gwServer := httptest.NewServer(NewHandler(g))
	t.Cleanup(gwServer.Close)
	ctx := testCtx(t)

	resp, err := http.Post(
		gwServer.URL+"/v1/partition?algorithm=oblivious&machine=cloud&cores=4",
		"text/plain", strings.NewReader(tinyWire(0).HMetis))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("raw upload status %d, want 202", resp.StatusCode)
	}
	var info hyperpraw.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Machine.Kind != "cloud" || info.Machine.Cores != 4 {
		t.Fatalf("machine %+v", info.Machine)
	}
	res, err := client.New(gwServer.URL, nil).Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != 8 || res.K != 4 {
		t.Fatalf("result parts=%d k=%d", len(res.Parts), res.K)
	}
}
