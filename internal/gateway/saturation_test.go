package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hyperpraw"
	"hyperpraw/internal/telemetry"
)

// saturableBackend fakes an hpserve whose /healthz advertises a steerable
// queue occupancy and whose submit path can be switched to 429 rejections,
// while real submissions are never served (tests route around it or assert
// the rejection).
type saturableBackend struct {
	queued  atomic.Int32
	cap429  atomic.Bool // POST /v1/partition returns 429 when set
	healthz atomic.Int32
}

func newSaturableBackend(t *testing.T, queueDepth int) (*saturableBackend, *httptest.Server) {
	t.Helper()
	sb := &saturableBackend{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			sb.healthz.Add(1)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
				"status": "ok", "workers": 1,
				"queue_depth": queueDepth, "queued": int(sb.queued.Load()),
			})
		case r.URL.Path == "/v1/partition" && sb.cap429.Load():
			w.Header().Set("Retry-After", "7")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		default:
			http.Error(w, `{"error":"saturable fake serves no jobs"}`, http.StatusInternalServerError)
		}
	}))
	t.Cleanup(ts.Close)
	return sb, ts
}

// primaryWire finds a tinyWire variant whose rendezvous primary is url.
func primaryWire(t *testing.T, urls []string, url string) hyperpraw.PartitionRequest {
	t.Helper()
	for i := 0; i < 36; i++ {
		w := tinyWire(i)
		if RendezvousOrder(urls, fingerprintOf(t, w))[0] == url {
			return w
		}
	}
	t.Fatalf("no test fingerprint ranks %s first", url)
	return hyperpraw.PartitionRequest{}
}

func TestGatewaySpillsOffSaturatedPrimary(t *testing.T) {
	sb, fake := newSaturableBackend(t, 10)
	real := newBackend(t, nil)
	urls := []string{fake.URL, real.URL}
	g := New(Config{
		Backends: urls, HealthInterval: -1,
		Metrics: telemetry.NewRegistry(),
	})
	t.Cleanup(g.Close)
	ctx := testCtx(t)
	wire := primaryWire(t, urls, fake.URL)

	// 9/10 queued is beyond the 0.8 default watermark: the probe marks the
	// primary saturated and routing spills to the next-ranked backend.
	sb.queued.Store(9)
	g.CheckBackends(ctx)
	for _, st := range g.Backends() {
		if st.URL == fake.URL {
			if !st.Saturated || st.Queued != 9 || !st.Healthy {
				t.Fatalf("probed primary status %+v, want healthy and saturated with queued 9", st)
			}
		}
	}
	info, err := g.Submit(ctx, wire)
	if err != nil {
		t.Fatal(err)
	}
	if info.Backend != real.URL {
		t.Fatalf("submission routed to %s, want spill target %s", info.Backend, real.URL)
	}
	if n := g.metrics.spills.Value(); n != 1 {
		t.Fatalf("hpgate_spills_total = %v, want 1", n)
	}
	if n := g.metrics.shed.Value(); n != 0 {
		t.Fatalf("hpgate_shed_total = %v, want 0 (a backend took the job)", n)
	}

	// The queue drains below the watermark: the next probe clears the
	// verdict and the primary would take new work again.
	sb.queued.Store(2)
	g.CheckBackends(ctx)
	for _, st := range g.Backends() {
		if st.URL == fake.URL && st.Saturated {
			t.Fatalf("primary still saturated after draining: %+v", st)
		}
	}
}

func TestGatewayShedsWhenAllSaturated(t *testing.T) {
	sb, fake := newSaturableBackend(t, 10)
	sb.cap429.Store(true)
	g := New(Config{
		Backends: []string{fake.URL}, HealthInterval: -1,
		Metrics: telemetry.NewRegistry(),
	})
	t.Cleanup(g.Close)
	ctx := testCtx(t)

	_, err := g.Submit(ctx, tinyWire(0))
	if !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit against an all-429 fleet = %v, want ErrSaturated", err)
	}
	var se *SaturatedError
	if !errors.As(err, &se) || se.RetryAfter != 7 {
		t.Fatalf("shed verdict %v does not carry the backend's Retry-After 7", err)
	}
	if n := g.metrics.shed.Value(); n != 1 {
		t.Fatalf("hpgate_shed_total = %v, want 1", n)
	}
	// The 429 marked the backend saturated without ejecting it.
	for _, st := range g.Backends() {
		if !st.Saturated || !st.Healthy || st.Breaker != "closed" {
			t.Fatalf("backend after 429: %+v, want healthy+saturated, breaker closed", st)
		}
	}

	// Over HTTP the shed is a 429 with the propagated hint.
	h := NewHandler(g)
	r := httptest.NewRequest(http.MethodPost, "/v1/partition?algorithm=aware&machine=archer&cores=4",
		strings.NewReader(tinyWire(0).HMetis))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("HTTP shed status %d, want 429", w.Code)
	}
	if secs, err := strconv.Atoi(w.Header().Get("Retry-After")); err != nil || secs != 7 {
		t.Fatalf("Retry-After %q, want 7", w.Header().Get("Retry-After"))
	}

	// A successful probe with a drained queue clears the sticky verdict.
	sb.queued.Store(0)
	g.CheckBackends(ctx)
	for _, st := range g.Backends() {
		if st.Saturated {
			t.Fatalf("saturation still sticky after a clean probe: %+v", st)
		}
	}
}

func TestGatewayBreakerPacesProbesAndRecovers(t *testing.T) {
	var down atomic.Bool
	var probes atomic.Int32
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.Error(w, `{"error":"probe-only fake"}`, http.StatusInternalServerError)
			return
		}
		probes.Add(1)
		if down.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status":"ok","workers":1}`)
	}))
	t.Cleanup(flaky.Close)

	reg := telemetry.NewRegistry()
	g := New(Config{
		Backends: []string{flaky.URL}, HealthInterval: -1,
		BreakerThreshold: 1, BreakerCooldown: 150 * time.Millisecond,
		Metrics: reg,
	})
	t.Cleanup(g.Close)
	ctx := testCtx(t)

	down.Store(true)
	g.CheckBackends(ctx)
	if st := g.Backends()[0]; st.Healthy || st.Breaker != "open" {
		t.Fatalf("backend after failed probe: %+v, want breaker open", st)
	}
	// Within the cooldown the open breaker withholds probes entirely.
	before := probes.Load()
	g.CheckBackends(ctx)
	if probes.Load() != before {
		t.Fatalf("probe sent while the breaker was cooling down (%d -> %d)", before, probes.Load())
	}

	// After the cooldown the next round is the half-open trial; it fails
	// and reopens, then the backend recovers and the following trial
	// closes the breaker.
	time.Sleep(200 * time.Millisecond)
	g.CheckBackends(ctx)
	if st := g.Backends()[0]; st.Breaker != "open" {
		t.Fatalf("failed trial left breaker %q, want open", st.Breaker)
	}
	down.Store(false)
	time.Sleep(200 * time.Millisecond)
	g.CheckBackends(ctx)
	if st := g.Backends()[0]; !st.Healthy || st.Breaker != "closed" {
		t.Fatalf("backend after recovery: %+v, want breaker closed", st)
	}

	// The transition series observed the whole trajectory.
	wantMin := map[string]float64{"open": 2, "half-open": 2, "closed": 1}
	for to, want := range wantMin {
		if n := g.metrics.breakerTransitions.WithLabelValues(flaky.URL, to).Value(); n < want {
			t.Fatalf("breaker transitions to %q = %v, want >= %v", to, n, want)
		}
	}
	if n := g.metrics.ejections.WithLabelValues(flaky.URL).Value(); n != 1 {
		t.Fatalf("ejections = %v, want exactly 1 (half-open->open is the same outage)", n)
	}
	if n := g.metrics.readmissions.WithLabelValues(flaky.URL).Value(); n != 1 {
		t.Fatalf("readmissions = %v, want 1", n)
	}

	// The new families pass the exposition linter.
	var buf strings.Builder
	if err := reg.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	if problems := telemetry.LintExposition(strings.NewReader(buf.String())); len(problems) != 0 {
		t.Fatalf("exposition lint: %v", problems)
	}
}

func TestGatewaySaturatedPrimaryStillLastResort(t *testing.T) {
	// A saturated backend is demoted, not fenced off: when it is the only
	// backend and it accepts (no 429), the job must still land on it.
	real := newBackend(t, nil)
	g := New(Config{Backends: []string{real.URL}, HealthInterval: -1})
	t.Cleanup(g.Close)
	ctx := testCtx(t)

	b, ok := g.backendFor(real.URL)
	if !ok {
		t.Fatal("backend missing")
	}
	b.markSaturated(3)
	info, err := g.Submit(ctx, tinyWire(2))
	if err != nil {
		t.Fatalf("submit with only a saturated backend = %v, want accepted", err)
	}
	if info.Backend != real.URL {
		t.Fatalf("routed to %s", info.Backend)
	}
	if err := waitDone(ctx, g, info.ID); err != nil {
		t.Fatal(err)
	}
}

// waitDone polls until id settles done.
func waitDone(ctx context.Context, g *Gateway, id string) error {
	for {
		res, info, err := g.Result(ctx, id)
		if err != nil {
			return err
		}
		if res != nil {
			return nil
		}
		if info.Status == hyperpraw.JobFailed {
			return fmt.Errorf("job failed: %s", info.Error)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(10 * time.Millisecond):
		}
	}
}
