package gateway

import (
	"fmt"
	"testing"

	"hyperpraw"
)

// newPruneFixture builds a gateway job table directly (no backends, no
// health loop) so prune behavior and cost can be probed in isolation.
func newPruneFixture(maxJobs int, terminal []bool) *Gateway {
	g := &Gateway{
		cfg:  Config{MaxJobs: maxJobs, HealthInterval: -1}.withDefaults(),
		jobs: make(map[string]*gwJob, len(terminal)),
	}
	for i, term := range terminal {
		id := fmt.Sprintf("gw-%06d", i+1)
		j := &gwJob{id: id, wire: hyperpraw.PartitionRequest{Algorithm: "aware"}}
		j.terminal.Store(term)
		g.jobs[id] = j
		g.order = append(g.order, id)
	}
	return g
}

// TestGatewayPruneSinglePass pins the prune semantics: terminal jobs are
// evicted oldest-first until the cap is met, live jobs survive in order,
// and jobs still over the cap afterwards are returned for wire-stripping.
func TestGatewayPruneSinglePass(t *testing.T) {
	// 7 jobs, cap 3: the three terminal ones go, four live ones remain,
	// so the oldest survivor is handed back for stripping.
	g := newPruneFixture(3, []bool{false, true, false, true, false, true, false})
	strip := g.pruneLocked()

	want := []string{"gw-000001", "gw-000003", "gw-000005", "gw-000007"}
	if len(g.order) != len(want) {
		t.Fatalf("order after prune %v, want %v", g.order, want)
	}
	for i, id := range want {
		if g.order[i] != id {
			t.Fatalf("order[%d] = %s, want %s (full: %v)", i, g.order[i], id, g.order)
		}
		if _, ok := g.jobs[id]; !ok {
			t.Fatalf("survivor %s missing from the table", id)
		}
	}
	for _, id := range []string{"gw-000002", "gw-000004", "gw-000006"} {
		if _, ok := g.jobs[id]; ok {
			t.Fatalf("terminal job %s not evicted", id)
		}
	}
	if len(strip) != 1 || strip[0].id != "gw-000001" {
		t.Fatalf("strip list %v, want the oldest over-cap survivor gw-000001", strip)
	}
}

// BenchmarkGatewayPruneLongRunningHead is the quadratic-prune guard: a
// table whose head is live (unprunable) jobs and whose tail is terminal
// ones. The old per-eviction rescan walked the live head once per evicted
// job (O(n^2)); the single-pass prune walks the order once.
func BenchmarkGatewayPruneLongRunningHead(b *testing.B) {
	const live, terminal = 2048, 2048
	shape := make([]bool, 0, live+terminal)
	for i := 0; i < live; i++ {
		shape = append(shape, false)
	}
	for i := 0; i < terminal; i++ {
		shape = append(shape, true)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := newPruneFixture(live, shape)
		b.StartTimer()
		if strip := g.pruneLocked(); len(strip) != 0 {
			b.Fatalf("unexpected strip of %d jobs", len(strip))
		}
		if len(g.order) != live {
			b.Fatalf("pruned to %d, want %d", len(g.order), live)
		}
	}
}
