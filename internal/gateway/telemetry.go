package gateway

import (
	"runtime"
	"time"

	"hyperpraw"
	"hyperpraw/internal/membership"
	"hyperpraw/internal/telemetry"
)

// gatewayMetrics bundles the routing tier's instruments. Like the service
// tier, it is always constructed; with a nil registry every instrument is
// nil and recording no-ops, so call sites never guard.
type gatewayMetrics struct {
	reg   *telemetry.Registry
	http  *telemetry.HTTPMetrics
	start time.Time

	jobsSubmitted      *telemetry.Counter
	jobsCompleted      *telemetry.CounterVec   // status: done | failed
	reroutes           *telemetry.Counter      // submissions landed off their rendezvous primary
	spills             *telemetry.Counter      // reroutes past a saturated (not dead) primary
	shed               *telemetry.Counter      // submissions 429'd upstream: every backend saturated
	failovers          *telemetry.Counter      // jobs resubmitted to another backend
	ejections          *telemetry.CounterVec   // backend
	readmissions       *telemetry.CounterVec   // backend
	breakerTransitions *telemetry.CounterVec   // backend, to: open | half-open | closed
	breakerStates      *telemetry.GaugeVec     // backend; value encodes the state
	backendRequests    *telemetry.CounterVec   // backend, op, outcome
	upstreamSeconds    *telemetry.HistogramVec // op
	recoveryWaits      *telemetry.Counter      // recovery-window "wait it out" verdicts
	memberTransitions  *telemetry.CounterVec   // event: registered | renewed | deregistered | lease_expired | drain
	drains             *telemetry.Counter      // jobs resubmitted to peers by a member drain
	graphReplications  *telemetry.Counter      // arenas replicated to backends on first reference
	sseSubscribers     *telemetry.Gauge
}

// newGatewayMetrics registers the gateway's families on reg. Per-backend
// label values are backend base URLs — cardinality is the (small, operator
// -controlled) backend set, not request traffic.
func newGatewayMetrics(reg *telemetry.Registry, g *Gateway) *gatewayMetrics {
	m := &gatewayMetrics{reg: reg, start: time.Now()}
	if reg == nil {
		return m
	}
	m.http = telemetry.NewHTTPMetrics(reg, "hpgate")

	reg.GaugeFunc("hpgate_backends", "Backends in the routing set.",
		func() float64 {
			return float64(len(g.members.Snapshot().Members))
		})
	reg.GaugeFunc("hpgate_members", "Members in the cluster table (same set "+
		"as hpgate_backends; kept as the membership-facing name).",
		func() float64 {
			return float64(len(g.members.Snapshot().Members))
		})
	reg.GaugeFunc("hpgate_membership_epoch", "Current membership epoch; "+
		"bumps on every registration, deregistration, or lease expiry.",
		func() float64 {
			return float64(g.members.Snapshot().Epoch)
		})
	reg.GaugeFunc("hpgate_backends_healthy", "Backends currently routable.",
		func() float64 {
			n := 0
			for _, m := range g.members.Snapshot().Members {
				if healthy, _, _ := m.Status(); healthy {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("hpgate_jobs_tracked", "Jobs retained in the gateway's table.",
		func() float64 {
			g.mu.Lock()
			n := len(g.jobs)
			g.mu.Unlock()
			return float64(n)
		})

	m.jobsSubmitted = reg.Counter("hpgate_jobs_submitted_total",
		"Jobs accepted and routed to a backend.")
	m.jobsCompleted = reg.CounterVec("hpgate_jobs_completed_total",
		"Jobs observed reaching a terminal state at the gateway, by outcome.",
		"status")
	reg.GaugeFunc("hpgate_backends_saturated",
		"Backends currently marked saturated (queue occupancy beyond the "+
			"spill watermark, or a 429 observed since the last probe).",
		func() float64 {
			n := 0
			for _, m := range g.members.Snapshot().Members {
				if sat, _ := m.LoadStatus(); sat {
					n++
				}
			}
			return float64(n)
		})

	m.reroutes = reg.Counter("hpgate_reroutes_total",
		"Submissions that landed on a backend other than their rendezvous "+
			"primary (the primary was ejected or refused).")
	m.spills = reg.Counter("hpgate_spills_total",
		"Submissions spilled past a live but saturated rendezvous primary "+
			"to a lower-ranked backend.")
	m.shed = reg.Counter("hpgate_shed_total",
		"Submissions shed upstream with 429 because every backend was "+
			"saturated.")
	m.breakerTransitions = reg.CounterVec("hpgate_breaker_transitions_total",
		"Per-backend circuit-breaker transitions, by backend and target "+
			"state.", "backend", "to")
	m.breakerStates = reg.GaugeVec("hpgate_breaker_state",
		"Per-backend circuit-breaker state: 0 closed, 1 open, 2 half-open.",
		"backend")
	m.failovers = reg.Counter("hpgate_failovers_total",
		"Jobs resubmitted to another backend after theirs was lost.")
	m.ejections = reg.CounterVec("hpgate_backend_ejections_total",
		"Healthy-to-down transitions, by backend.", "backend")
	m.readmissions = reg.CounterVec("hpgate_backend_readmissions_total",
		"Down-to-healthy transitions, by backend.", "backend")
	m.backendRequests = reg.CounterVec("hpgate_backend_requests_total",
		"Proxied calls to backends, by backend, operation, and outcome.",
		"backend", "op", "outcome")
	m.upstreamSeconds = reg.HistogramVec("hpgate_upstream_seconds",
		"Latency of proxied backend calls, by operation.",
		telemetry.DefBuckets, "op")
	m.recoveryWaits = reg.Counter("hpgate_recovery_waits_total",
		"Times a lost durable backend's outage was waited out (recovery "+
			"window) instead of failing its job over.")
	m.memberTransitions = reg.CounterVec("hpgate_member_transitions_total",
		"Membership lifecycle events, by event: registered, renewed, "+
			"deregistered, lease_expired, drain.", "event")
	m.drains = reg.Counter("hpgate_drains_total",
		"Jobs resubmitted to rendezvous peers by a member drain "+
			"(deregistration, lease expiry, or a durable member down past "+
			"the recovery window).")
	if results := g.results; results != nil {
		reg.CounterFunc("hpgate_result_cache_hits_total",
			"Gateway result-cache hits: submissions answered with zero "+
				"backend requests.",
			func() float64 { return float64(results.Stats().Hits) })
		reg.CounterFunc("hpgate_result_cache_misses_total",
			"Gateway result-cache misses.",
			func() float64 { return float64(results.Stats().Misses) })
		reg.GaugeFunc("hpgate_result_cache_bytes",
			"Resident bytes held by the gateway's result cache.",
			func() float64 { return float64(results.Stats().Bytes) })
	}

	graphs := g.graphs
	reg.GaugeFunc("hpgate_graph_bytes",
		"Resident bytes held by the gateway's hypergraph arena store.",
		func() float64 { return float64(graphs.Stats().Bytes) })
	reg.GaugeFunc("hpgate_graph_refs",
		"Outstanding references into the gateway's arenas (held only "+
			"while a replication to a backend is streaming).",
		func() float64 { return float64(graphs.Stats().Refs) })
	reg.GaugeFunc("hpgate_graph_arenas",
		"Hypergraph arenas resident in the gateway's store.",
		func() float64 { return float64(graphs.Stats().Arenas) })
	reg.CounterFunc("hpgate_graph_evictions_total",
		"Arenas evicted from the gateway store's residency budget.",
		func() float64 { return float64(graphs.Stats().Evictions) })
	m.graphReplications = reg.Counter("hpgate_graph_replications_total",
		"Graphs replicated to a backend on first reference (GET probe "+
			"missed, chunked arena upload committed).")
	m.sseSubscribers = reg.Gauge("hpgate_sse_subscribers",
		"Progress event streams currently proxied.")
	return m
}

// breakerTransition publishes one breaker transition: the counter and the
// per-backend state gauge.
func (m *gatewayMetrics) breakerTransition(url string, to membership.State) {
	if m == nil {
		return
	}
	m.breakerTransitions.WithLabelValues(url, to.String()).Inc()
	m.breakerStates.WithLabelValues(url).Set(float64(to))
}

// breakerInit seeds a new backend's state gauge at closed so the series
// exists before its first transition.
func (m *gatewayMetrics) breakerInit(url string) {
	if m == nil {
		return
	}
	m.breakerStates.WithLabelValues(url).Set(float64(membership.StateClosed))
}

// backendRequest records one proxied call's outcome and latency.
func (m *gatewayMetrics) backendRequest(url, op string, err error, d time.Duration) {
	if m == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	m.backendRequests.WithLabelValues(url, op, outcome).Inc()
	m.upstreamSeconds.WithLabelValues(op).ObserveSeconds(d.Seconds())
}

// jobCompleted counts one terminal transition.
func (m *gatewayMetrics) jobCompleted(status hyperpraw.JobStatus) {
	if m == nil {
		return
	}
	label := "done"
	if status == hyperpraw.JobFailed {
		label = "failed"
	}
	m.jobsCompleted.WithLabelValues(label).Inc()
}

// snapshot builds the /healthz telemetry summary; nil when telemetry is off.
func (m *gatewayMetrics) snapshot() *hyperpraw.TelemetrySnapshot {
	if m == nil || m.reg == nil {
		return nil
	}
	return &hyperpraw.TelemetrySnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		GoVersion:     runtime.Version(),
		JobsSubmitted: uint64(m.jobsSubmitted.Value()),
		JobsCompleted: uint64(m.jobsCompleted.WithLabelValues("done").Value()),
		JobsFailed:    uint64(m.jobsCompleted.WithLabelValues("failed").Value()),
	}
}
