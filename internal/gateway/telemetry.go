package gateway

import (
	"runtime"
	"time"

	"hyperpraw"
	"hyperpraw/internal/telemetry"
)

// gatewayMetrics bundles the routing tier's instruments. Like the service
// tier, it is always constructed; with a nil registry every instrument is
// nil and recording no-ops, so call sites never guard.
type gatewayMetrics struct {
	reg   *telemetry.Registry
	http  *telemetry.HTTPMetrics
	start time.Time

	jobsSubmitted   *telemetry.Counter
	jobsCompleted   *telemetry.CounterVec   // status: done | failed
	reroutes        *telemetry.Counter      // submissions landed off their rendezvous primary
	failovers       *telemetry.Counter      // jobs resubmitted to another backend
	ejections       *telemetry.CounterVec   // backend
	readmissions    *telemetry.CounterVec   // backend
	backendRequests *telemetry.CounterVec   // backend, op, outcome
	upstreamSeconds *telemetry.HistogramVec // op
	recoveryWaits   *telemetry.Counter      // recovery-window "wait it out" verdicts
	sseSubscribers  *telemetry.Gauge
}

// newGatewayMetrics registers the gateway's families on reg. Per-backend
// label values are backend base URLs — cardinality is the (small, operator
// -controlled) backend set, not request traffic.
func newGatewayMetrics(reg *telemetry.Registry, g *Gateway) *gatewayMetrics {
	m := &gatewayMetrics{reg: reg, start: time.Now()}
	if reg == nil {
		return m
	}
	m.http = telemetry.NewHTTPMetrics(reg, "hpgate")

	reg.GaugeFunc("hpgate_backends", "Backends in the routing set.",
		func() float64 {
			g.mu.Lock()
			n := len(g.backends)
			g.mu.Unlock()
			return float64(n)
		})
	reg.GaugeFunc("hpgate_backends_healthy", "Backends currently routable.",
		func() float64 {
			g.mu.Lock()
			backends := make([]*backend, 0, len(g.backends))
			for _, b := range g.backends {
				backends = append(backends, b)
			}
			g.mu.Unlock()
			n := 0
			for _, b := range backends {
				if healthy, _, _ := b.status(); healthy {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("hpgate_jobs_tracked", "Jobs retained in the gateway's table.",
		func() float64 {
			g.mu.Lock()
			n := len(g.jobs)
			g.mu.Unlock()
			return float64(n)
		})

	m.jobsSubmitted = reg.Counter("hpgate_jobs_submitted_total",
		"Jobs accepted and routed to a backend.")
	m.jobsCompleted = reg.CounterVec("hpgate_jobs_completed_total",
		"Jobs observed reaching a terminal state at the gateway, by outcome.",
		"status")
	m.reroutes = reg.Counter("hpgate_reroutes_total",
		"Submissions that landed on a backend other than their rendezvous "+
			"primary (the primary was ejected or refused).")
	m.failovers = reg.Counter("hpgate_failovers_total",
		"Jobs resubmitted to another backend after theirs was lost.")
	m.ejections = reg.CounterVec("hpgate_backend_ejections_total",
		"Healthy-to-down transitions, by backend.", "backend")
	m.readmissions = reg.CounterVec("hpgate_backend_readmissions_total",
		"Down-to-healthy transitions, by backend.", "backend")
	m.backendRequests = reg.CounterVec("hpgate_backend_requests_total",
		"Proxied calls to backends, by backend, operation, and outcome.",
		"backend", "op", "outcome")
	m.upstreamSeconds = reg.HistogramVec("hpgate_upstream_seconds",
		"Latency of proxied backend calls, by operation.",
		telemetry.DefBuckets, "op")
	m.recoveryWaits = reg.Counter("hpgate_recovery_waits_total",
		"Times a lost durable backend's outage was waited out (recovery "+
			"window) instead of failing its job over.")
	m.sseSubscribers = reg.Gauge("hpgate_sse_subscribers",
		"Progress event streams currently proxied.")
	return m
}

// backendRequest records one proxied call's outcome and latency.
func (m *gatewayMetrics) backendRequest(url, op string, err error, d time.Duration) {
	if m == nil {
		return
	}
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	m.backendRequests.WithLabelValues(url, op, outcome).Inc()
	m.upstreamSeconds.WithLabelValues(op).ObserveSeconds(d.Seconds())
}

// jobCompleted counts one terminal transition.
func (m *gatewayMetrics) jobCompleted(status hyperpraw.JobStatus) {
	if m == nil {
		return
	}
	label := "done"
	if status == hyperpraw.JobFailed {
		label = "failed"
	}
	m.jobsCompleted.WithLabelValues(label).Inc()
}

// snapshot builds the /healthz telemetry summary; nil when telemetry is off.
func (m *gatewayMetrics) snapshot() *hyperpraw.TelemetrySnapshot {
	if m == nil || m.reg == nil {
		return nil
	}
	return &hyperpraw.TelemetrySnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		GoVersion:     runtime.Version(),
		JobsSubmitted: uint64(m.jobsSubmitted.Value()),
		JobsCompleted: uint64(m.jobsCompleted.WithLabelValues("done").Value()),
		JobsFailed:    uint64(m.jobsCompleted.WithLabelValues("failed").Value()),
	}
}
