package gateway

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"hyperpraw"
	"hyperpraw/client"
	"hyperpraw/internal/graphstore"
	"hyperpraw/internal/service"
)

// This file is the gateway half of the hypergraph resource API: clients
// upload a graph once to the gateway (the same POST /v1/hypergraphs
// surface hpserve exposes, mounted over the gateway's own arena store),
// and the gateway lazily replicates it to whichever backend the
// rendezvous ranking routes the first referencing job to. Replication
// streams the arena's serialised bytes (Arena.Raw) through the backend's
// chunked upload API — the backend's store recognises the arena framing
// and interns it without reparsing — and is idempotent by construction:
// the resource ID is the graph's fingerprint, so a duplicate replication
// dedups into the backend's existing arena.

// Graphs exposes the gateway's own hypergraph store (always non-nil
// after New); cmd/hpgate and tests reach the arenas through it.
func (g *Gateway) Graphs() *graphstore.Store { return g.graphs }

// submitWithGraph submits wire to b, first making sure b holds the
// referenced hypergraph (a no-op for inline requests). When the backend
// still answers 404 — it evicted the graph between the ensure and the
// submit — the graph is replicated once more and the submit retried.
func (g *Gateway) submitWithGraph(ctx context.Context, b *backend, wire hyperpraw.PartitionRequest) (hyperpraw.JobInfo, error) {
	id := wire.HypergraphID
	if id != "" {
		if err := g.ensureGraph(ctx, b, id); err != nil {
			return hyperpraw.JobInfo{}, err
		}
	}
	info, err := g.submitTo(ctx, b, wire)
	if err != nil && id != "" && graphMissing(err) {
		switch rerr := g.replicateOnce(ctx, b, id); {
		case rerr == nil:
			info, err = g.submitTo(ctx, b, wire)
		case errors.Is(rerr, ErrUnknownGraph):
			// The backend lost the graph and the gateway holds no copy
			// to restore it from: surface the actionable verdict.
			err = rerr
		}
	}
	return info, err
}

// ensureGraph makes sure backend b holds committed hypergraph id before
// a job referencing it lands there: a GET probe first (the steady state
// — the backend already has it, from an earlier job or a direct upload),
// then a replication upload of the gateway's arena.
func (g *Gateway) ensureGraph(ctx context.Context, b *backend, id string) error {
	probeCtx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
	start := time.Now()
	info, err := b.cli.Hypergraph(probeCtx, id)
	cancel()
	g.metrics.backendRequest(b.url, "graph_probe", err, time.Since(start))
	if err == nil && info.State == hyperpraw.HypergraphCommitted {
		return nil
	}
	if err != nil && !graphMissing(err) {
		return err // backend trouble, not absence: the caller's error
	}
	return g.replicateOnce(ctx, b, id)
}

// replication is one in-flight transfer of a graph to a backend; late
// callers wait on done instead of starting their own.
type replication struct {
	done chan struct{}
	err  error
}

// replicateOnce collapses concurrent replications of the same graph to
// the same backend into a single transfer: the first caller streams the
// arena, everyone else waits for its verdict. Without this, N jobs
// referencing a freshly uploaded graph would race N full-arena uploads
// at the same backend (all dedup'd on arrival — correct, but N-1
// transfers wasted). A failed flight is forgotten before its waiters
// wake, so a waiter retries the transfer itself rather than inheriting
// a verdict its own context never caused.
func (g *Gateway) replicateOnce(ctx context.Context, b *backend, id string) error {
	key := b.url + "\x00" + id
	for {
		g.replMu.Lock()
		if f, ok := g.repl[key]; ok {
			g.replMu.Unlock()
			select {
			case <-f.done:
				if f.err == nil {
					return nil
				}
				continue // the flight failed; try a fresh one
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		f := &replication{done: make(chan struct{})}
		g.repl[key] = f
		g.replMu.Unlock()

		f.err = g.replicateGraph(ctx, b, id)
		g.replMu.Lock()
		delete(g.repl, key)
		g.replMu.Unlock()
		close(f.done)
		return f.err
	}
}

// replicateGraph streams the gateway's arena for id to backend b as a
// chunked upload and verifies the backend committed the same
// fingerprint. The arena stays pinned (referenced) for the duration so
// the gateway's own LRU cannot evict it mid-transfer. The upload runs
// under the caller's context, not the proxy deadline: a multi-gigabyte
// arena legitimately takes longer than one proxied status call.
func (g *Gateway) replicateGraph(ctx context.Context, b *backend, id string) error {
	a, release, err := g.graphs.Acquire(id)
	if err != nil {
		return fmt.Errorf("%w: %s (upload it to the gateway first)", ErrUnknownGraph, id)
	}
	defer release()
	start := time.Now()
	info, err := b.cli.UploadHypergraph(ctx, bytes.NewReader(a.Raw()), a.Name(), 0)
	g.metrics.backendRequest(b.url, "replicate", err, time.Since(start))
	if err != nil {
		return fmt.Errorf("gateway: replicating %s to %s: %w", id, b.url, err)
	}
	if info.ID != id {
		return fmt.Errorf("gateway: replicating %s to %s: backend committed fingerprint %s", id, b.url, info.ID)
	}
	g.metrics.graphReplications.Inc()
	return nil
}

// graphMissing matches a backend's 404 verdict — on a resource GET or on
// a submit whose hypergraph_id the backend does not hold.
func graphMissing(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound
}

// DeleteGraph removes hypergraph id everywhere: from every backend
// first, concurrently, then from the gateway's own store. Any backend
// refusing because jobs still reference the graph aborts the whole
// delete (ErrReferenced, HTTP 409); an unreachable backend aborts it
// too (service.ErrUpstream, HTTP 502) so a retry can still find the
// gateway's copy intact. A backend that never held the graph answers
// 404 and is simply not counted.
func (g *Gateway) DeleteGraph(ctx context.Context, id string) error {
	snap := g.members.Snapshot()
	backends := make([]*backend, 0, len(snap.Members))
	for _, m := range snap.Members {
		backends = append(backends, g.wrap(m))
	}

	_, localKnown := g.graphs.Get(id)
	found := localKnown
	errs := make([]error, len(backends))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			callCtx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
			defer cancel()
			start := time.Now()
			err := b.cli.DeleteHypergraph(callCtx, id)
			g.metrics.backendRequest(b.url, "graph_delete", err, time.Since(start))
			var apiErr *client.APIError
			switch {
			case err == nil:
				mu.Lock()
				found = true
				mu.Unlock()
			case errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound:
				// The backend never held it; nothing to do.
			case errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusConflict:
				errs[i] = fmt.Errorf("%w: %s on %s: %v", graphstore.ErrReferenced, id, b.url, apiErr.Message)
			default:
				errs[i] = fmt.Errorf("%w: deleting %s on %s: %v", service.ErrUpstream, id, b.url, err)
			}
		}(i, b)
	}
	wg.Wait()

	var upstream error
	for _, err := range errs {
		if errors.Is(err, graphstore.ErrReferenced) {
			return err // still in use somewhere: nothing was harmed locally
		}
		if err != nil && upstream == nil {
			upstream = err
		}
	}
	if upstream != nil {
		return upstream
	}
	switch err := g.graphs.Delete(id); {
	case err == nil:
		return nil
	case errors.Is(err, graphstore.ErrNotFound) && found:
		return nil // only backends held it; they no longer do
	default:
		return err
	}
}
