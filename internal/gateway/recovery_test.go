package gateway

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hyperpraw"
	"hyperpraw/client"
	"hyperpraw/internal/service"
	"hyperpraw/internal/store"
)

// wireRoutedTo scans tinyWire's variants for one whose rendezvous primary
// is url.
func wireRoutedTo(t *testing.T, urls []string, url string) hyperpraw.PartitionRequest {
	t.Helper()
	for i := 0; i < 36; i++ {
		w := tinyWire(i)
		if RendezvousOrder(urls, fingerprintOf(t, w))[0] == url {
			return w
		}
	}
	t.Fatalf("no test fingerprint ranks %s first", url)
	return hyperpraw.PartitionRequest{}
}

// TestGatewayDurableBackendRecoversAfterRestart is the acceptance
// scenario: a backend running with a durable store dies after finishing a
// job; while it is down the gateway keeps the job pending on it (no
// failover resubmission), and once it restarts over the same store the
// original result is served verbatim.
func TestGatewayDurableBackendRecoversAfterRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)

	var down atomic.Bool
	var inner atomic.Value // http.Handler of the current service incarnation
	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc1 := service.New(service.Config{Workers: 1, Store: st1})
	inner.Store(service.NewHandler(svc1))
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, `{"error":"backend restarting"}`, http.StatusServiceUnavailable)
			return
		}
		inner.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	other := newBackend(t, nil)
	urls := []string{ts.URL, other.URL}
	g := New(Config{Backends: urls, HealthInterval: -1, RecoveryWindow: time.Minute})
	t.Cleanup(g.Close)

	// A health probe teaches the gateway which backends are durable.
	g.CheckBackends(ctx)
	for _, b := range g.Backends() {
		if b.URL == ts.URL && !b.Durable {
			t.Fatal("backend with a store not reported durable")
		}
		if b.URL == other.URL && b.Durable {
			t.Fatal("storeless backend reported durable")
		}
	}

	info, err := g.Submit(ctx, wireRoutedTo(t, urls, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	res1, err := g.waitResult(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Outage begins. Every poll must stay pending on the durable backend
	// instead of failing over or erroring.
	down.Store(true)
	g.CheckBackends(ctx)
	res, mid, err := g.Result(ctx, info.ID)
	if err != nil || res != nil {
		t.Fatalf("poll during outage: res=%v err=%v, want pending", res, err)
	}
	if mid.Backend != ts.URL {
		t.Fatalf("job moved to %s during the outage, want it held on %s", mid.Backend, ts.URL)
	}
	midInfo, err := g.Job(ctx, info.ID)
	if err != nil || midInfo.Backend != ts.URL {
		t.Fatalf("status during outage: %+v err=%v", midInfo, err)
	}

	// A stream started during the outage must wait out the restart too.
	type streamResult struct {
		events []hyperpraw.ProgressEvent
		err    error
	}
	resc := make(chan streamResult, 1)
	go func() {
		var events []hyperpraw.ProgressEvent
		err := g.StreamEvents(ctx, info.ID, 0, func(ev hyperpraw.ProgressEvent) error {
			events = append(events, ev)
			return nil
		})
		resc <- streamResult{events, err}
	}()

	// "Restart": a fresh service incarnation over the same store.
	if err := svc1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc2 := service.New(service.Config{Workers: 1, Store: st2})
	t.Cleanup(func() {
		svc2.Shutdown(context.Background()) //nolint:errcheck
		st2.Close()                         //nolint:errcheck
	})
	inner.Store(service.NewHandler(svc2))
	down.Store(false)
	g.CheckBackends(ctx)

	res2, err := g.waitResult(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	// The stored result, not a recomputation: the original run's wall time
	// comes back byte-for-byte.
	if res2.ElapsedMS != res1.ElapsedMS {
		t.Fatalf("recovered ElapsedMS %g != original %g (failover recomputed?)", res2.ElapsedMS, res1.ElapsedMS)
	}
	after, err := g.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Backend != ts.URL || after.Status != hyperpraw.JobDone {
		t.Fatalf("after restart: %+v, want done on %s", after, ts.URL)
	}

	select {
	case sr := <-resc:
		if sr.err != nil {
			t.Fatalf("stream across the restart: %v", sr.err)
		}
		final := sr.events[len(sr.events)-1]
		if !final.Final || final.Status != hyperpraw.JobDone {
			t.Fatalf("stream final frame %+v, want done", final)
		}
	case <-time.After(time.Minute):
		t.Fatal("stream never completed after the restart")
	}
}

// TestGatewaySSERecoveryAfterRestartRerun: a durable backend dies after
// streaming part of a job's progress and comes back with a re-run log
// that is shorter than what the subscriber already saw. The proxy must
// restart its per-backend cursor on recovery — resuming at the old
// sequence number would skip the re-run's frames, drop the final frame,
// and trigger the failover recomputation recovery exists to avoid.
func TestGatewaySSERecoveryAfterRestartRerun(t *testing.T) {
	const (
		phaseFirstRun = iota
		phaseDown
		phaseRestarted
	)
	var phase atomic.Int32
	writeEvents := func(w http.ResponseWriter, after, n int, final bool) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		for i := 1; i <= n; i++ {
			if i <= after {
				continue
			}
			service.WriteSSE(w, hyperpraw.ProgressEvent{ //nolint:errcheck
				JobID:          "b-000001",
				Seq:            i,
				IterationPoint: hyperpraw.IterationPoint{Iteration: i},
			})
		}
		if final && n+1 > after {
			service.WriteSSE(w, hyperpraw.ProgressEvent{ //nolint:errcheck
				JobID: "b-000001", Seq: n + 1, Final: true, Status: hyperpraw.JobDone,
			})
		}
		w.(http.Flusher).Flush()
	}
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if phase.Load() == phaseDown {
			http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
			return
		}
		switch {
		case r.URL.Path == "/healthz":
			service.WriteJSON(w, http.StatusOK, hyperpraw.ServeHealth{Status: "ok", Durable: true})
		case r.URL.Path == "/v1/partition":
			service.WriteJSON(w, http.StatusAccepted, hyperpraw.JobInfo{ID: "b-000001", Status: hyperpraw.JobQueued})
		case strings.HasSuffix(r.URL.Path, "/events"):
			after, _ := service.ParseAfter(r)
			if phase.Load() == phaseFirstRun {
				// First incarnation: six iteration frames, then the
				// process dies mid-stream (clean EOF, no final frame).
				writeEvents(w, after, 6, false)
				phase.Store(phaseDown)
				return
			}
			// Restarted incarnation: the re-queued job re-ran with fewer
			// frames; its fresh log numbers from 1 and seals at seq 5.
			writeEvents(w, after, 4, true)
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(backend.Close)

	g := New(Config{Backends: []string{backend.URL}, HealthInterval: -1, RecoveryWindow: time.Minute})
	t.Cleanup(g.Close)
	ctx := testCtx(t)
	g.CheckBackends(ctx) // learn the durable flag
	info, err := g.Submit(ctx, tinyWire(0))
	if err != nil {
		t.Fatal(err)
	}

	go func() {
		time.Sleep(600 * time.Millisecond)
		phase.Store(phaseRestarted)
	}()
	var events []hyperpraw.ProgressEvent
	if err := g.StreamEvents(ctx, info.ID, 0, func(ev hyperpraw.ProgressEvent) error {
		events = append(events, ev)
		return nil
	}); err != nil {
		t.Fatalf("stream across the restart re-run: %v", err)
	}
	final := events[len(events)-1]
	if !final.Final || final.Status != hyperpraw.JobDone {
		t.Fatalf("final frame %+v, want done (failed over instead of recovering?)", final)
	}
	seen := map[int]bool{}
	for _, ev := range events[:len(events)-1] {
		if seen[ev.Iteration] {
			t.Fatalf("iteration %d delivered twice", ev.Iteration)
		}
		seen[ev.Iteration] = true
	}
	if len(events) != 7 { // iterations 1..6 once each, plus the final
		t.Fatalf("delivered %d frames, want 6 iterations + final: %+v", len(events), events)
	}
}

// TestGatewayRecoveryWindowExpiryFailsOver: a durable backend that stays
// down past the recovery window is treated like any other loss — its
// in-flight job fails over and completes elsewhere.
func TestGatewayRecoveryWindowExpiryFailsOver(t *testing.T) {
	dir := t.TempDir()
	ctx := testCtx(t)

	gate := make(chan struct{})
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(service.Config{
		Workers: 1,
		Store:   st,
		ProfileFunc: func(m *hyperpraw.Machine) hyperpraw.Environment {
			<-gate
			return hyperpraw.Profile(m)
		},
	})
	t.Cleanup(func() {
		close(gate)
		svc.Shutdown(context.Background()) //nolint:errcheck
		st.Close()                         //nolint:errcheck
	})
	var down atomic.Bool
	handler := service.NewHandler(svc)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, `{"error":"gone for good"}`, http.StatusServiceUnavailable)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	other := newBackend(t, nil)
	urls := []string{ts.URL, other.URL}
	g := New(Config{Backends: urls, HealthInterval: -1, RecoveryWindow: 30 * time.Millisecond})
	t.Cleanup(g.Close)
	g.CheckBackends(ctx)

	info, err := g.Submit(ctx, wireRoutedTo(t, urls, ts.URL))
	if err != nil {
		t.Fatal(err)
	}
	down.Store(true) // the durable backend dies mid-job and never returns

	res, err := g.waitResult(ctx, info.ID)
	if err != nil {
		t.Fatalf("job did not fail over after the recovery window: %v", err)
	}
	if len(res.Parts) != 8 {
		t.Fatalf("failover result has %d parts", len(res.Parts))
	}
	after, err := g.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if after.Backend != other.URL {
		t.Fatalf("job finished on %s, want failover target %s", after.Backend, other.URL)
	}
}

// TestGatewayStrippedJobFailsActionably covers the silent-loss fix: a
// still-running job whose retained request was stripped by the retention
// cap loses its backend — the verdict must be an actionable 410 telling
// the caller to resubmit, flagged on the job info, not a generic failure.
func TestGatewayStrippedJobFailsActionably(t *testing.T) {
	gate := make(chan struct{})
	b := newBackend(t, gate) // profiling gated shut: jobs never turn terminal
	g := New(Config{Backends: []string{b.URL}, HealthInterval: -1, MaxJobs: 2})
	t.Cleanup(g.Close)
	t.Cleanup(func() { close(gate) })
	gwServer := httptest.NewServer(NewHandler(g))
	t.Cleanup(gwServer.Close)
	c := client.New(gwServer.URL, nil)
	ctx := testCtx(t)

	var ids []string
	for i := 0; i < 4; i++ {
		info, err := g.Submit(ctx, tinyWire(i))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	jobs := g.Jobs()
	if !jobs[0].Stripped || !jobs[1].Stripped {
		t.Fatalf("over-cap jobs not flagged stripped: %+v", jobs[:2])
	}
	if jobs[3].Stripped {
		t.Fatalf("newest job flagged stripped: %+v", jobs[3])
	}

	// The backend dies; the stripped job cannot fail over.
	b.CloseClientConnections()
	b.Close()

	_, err := c.Result(ctx, ids[0])
	if err == nil {
		t.Fatal("stripped job with a dead backend reported no error")
	}
	if !client.NotRecoverable(err) {
		t.Fatalf("stripped-job error %v, want the 410 not-recoverable verdict", err)
	}
	if !strings.Contains(err.Error(), "resubmit") {
		t.Fatalf("error %q does not tell the caller to resubmit", err)
	}
	// The verdict is sticky: a client polling after the job settled must
	// get the same 410, not an indistinguishable generic 422 failure.
	if _, err := c.Result(ctx, ids[0]); !client.NotRecoverable(err) {
		t.Fatalf("second poll returned %v, want the sticky 410 verdict", err)
	}

	if _, _, err := g.Result(ctx, ids[1]); !errors.Is(err, ErrNotRecoverable) {
		t.Fatalf("direct poll error %v, want ErrNotRecoverable", err)
	}

	// The verdict settles the job: flagged, failed, queryable.
	settled, err := g.Job(ctx, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if settled.Status != hyperpraw.JobFailed || !settled.Stripped {
		t.Fatalf("settled job %+v, want failed and stripped", settled)
	}
}
