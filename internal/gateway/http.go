package gateway

import (
	"errors"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"hyperpraw"
	"hyperpraw/internal/service"
	"hyperpraw/internal/telemetry"
)

// NewHandler wraps a Gateway in the same HTTP JSON API cmd/hpserve serves
// (the shared plumbing — JSON shapes, batch bounds, SSE framing — comes
// from internal/service so the tiers cannot drift apart), plus the
// gateway extensions:
//
//	POST /v1/partition          submit a job (routed by fingerprint)
//	POST /v1/partition/batch    submit many jobs, fanned out across backends
//	GET  /v1/jobs               list gateway jobs (?limit= ?after= ?state=)
//	GET  /v1/jobs/{id}          job status (proxied, with failover)
//	GET  /v1/jobs/{id}/result   finished payload (proxied, with failover)
//	GET  /v1/jobs/{id}/events   SSE progress (proxied, with failover)
//	*    /v1/hypergraphs[/...]  hypergraph resources on the gateway's own
//	                            store (replicated to backends on first
//	                            reference; DELETE fans out to the fleet)
//	GET  /v1/algorithms         supported algorithm names
//	GET  /v1/backends           backend set and health
//	GET  /v1/cluster/members    cluster member table (epoch + leases)
//	POST /v1/cluster/members    register a member / renew its lease
//	DELETE /v1/cluster/members/{url}  deregister a member and drain its jobs
//	GET  /healthz               gateway + backend health
//	GET  /metrics               Prometheus exposition (with Config.Metrics)
//
// Every route runs behind telemetry.Instrument: the gateway mints (or
// adopts) an X-Hyperpraw-Trace ID per request, which the proxied backend
// calls carry onward, so one submission is followable across both tiers.
func NewHandler(g *Gateway) http.Handler {
	mux := http.NewServeMux()
	if g.metrics != nil && g.metrics.reg != nil {
		mux.Handle("/metrics", g.metrics.reg.Handler())
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, g.Health())
	})
	mux.HandleFunc("/v1/backends", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string]any{"backends": g.Backends()})
	})
	mux.HandleFunc("/v1/cluster/members", func(w http.ResponseWriter, r *http.Request) {
		handleMembers(g, w, r)
	})
	mux.HandleFunc("/v1/algorithms", func(w http.ResponseWriter, r *http.Request) {
		service.WriteJSON(w, http.StatusOK, map[string][]string{"algorithms": service.Algorithms()})
	})
	mux.HandleFunc("/v1/partition", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			service.WriteError(w, r, http.StatusMethodNotAllowed, hyperpraw.ErrCodeMethodNotAllowed, "POST required")
			return
		}
		handleSubmit(g, w, r)
	})
	mux.HandleFunc("/v1/partition/batch", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			service.WriteError(w, r, http.StatusMethodNotAllowed, hyperpraw.ErrCodeMethodNotAllowed, "POST required")
			return
		}
		handleBatch(g, w, r)
	})
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			service.WriteError(w, r, http.StatusMethodNotAllowed, hyperpraw.ErrCodeMethodNotAllowed, "GET required")
			return
		}
		limit, after, state, err := service.ParseJobsQuery(r)
		if err != nil {
			service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, err.Error())
			return
		}
		service.WriteJSON(w, http.StatusOK, g.JobsPage(limit, after, state))
	})
	service.RegisterHypergraphRoutes(mux, g.Graphs(), func(r *http.Request, id string) error {
		return g.DeleteGraph(r.Context(), id)
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			service.WriteError(w, r, http.StatusMethodNotAllowed, hyperpraw.ErrCodeMethodNotAllowed, "GET required")
			return
		}
		handleJob(g, w, r)
	})
	var m *telemetry.HTTPMetrics
	if g.metrics != nil {
		m = g.metrics.http
	}
	// The member resource routes ahead of the mux: its final path segment is
	// a path-escaped URL whose decoded slashes ServeMux would "clean" into a
	// 301 — and clients turn a redirected DELETE into a GET.
	return telemetry.Instrument(m, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.EscapedPath(), "/v1/cluster/members/") {
			handleMember(g, w, r)
			return
		}
		mux.ServeHTTP(w, r)
	}))
}

// handleMembers serves the member-collection routes: GET lists the table
// at its current epoch, POST registers a member (or renews its lease —
// hpserve's heartbeat is the same request repeated).
func handleMembers(g *Gateway, w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		service.WriteJSON(w, http.StatusOK, g.Members())
	case http.MethodPost:
		var spec hyperpraw.MemberSpec
		if err := service.DecodeJSON(r, &spec); err != nil {
			service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, err.Error())
			return
		}
		info, err := g.RegisterMember(spec)
		if err != nil {
			service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, err.Error())
			return
		}
		service.WriteJSON(w, http.StatusOK, info)
	default:
		service.WriteError(w, r, http.StatusMethodNotAllowed, hyperpraw.ErrCodeMethodNotAllowed, "GET or POST required")
	}
}

// handleMember serves DELETE /v1/cluster/members/{url}: deregistration
// with a synchronous drain of the member's jobs to its rendezvous peers.
// The member URL is path-escaped into the final segment.
func handleMember(g *Gateway, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodDelete {
		service.WriteError(w, r, http.StatusMethodNotAllowed, hyperpraw.ErrCodeMethodNotAllowed, "DELETE required")
		return
	}
	escaped := strings.TrimPrefix(r.URL.EscapedPath(), "/v1/cluster/members/")
	memberURL, err := url.PathUnescape(escaped)
	if err != nil || memberURL == "" {
		service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, "bad member url")
		return
	}
	if err := g.DeregisterMember(memberURL); err != nil {
		service.WriteError(w, r, http.StatusNotFound, hyperpraw.ErrCodeNotFound, "unknown member "+memberURL)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func handleSubmit(g *Gateway, w http.ResponseWriter, r *http.Request) {
	wire, err := service.DecodeSubmission(r)
	if err != nil {
		service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, err.Error())
		return
	}
	info, err := g.Submit(r.Context(), wire)
	switch {
	case errors.Is(err, ErrBadRequest):
		service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, err.Error())
	case errors.Is(err, ErrUnknownGraph):
		service.WriteError(w, r, http.StatusNotFound, hyperpraw.ErrCodeNotFound, err.Error())
	case errors.Is(err, ErrSaturated):
		// The whole fleet is at its admission limits: propagate the 429
		// and the backends' best backoff hint instead of disguising
		// overload as an outage (503).
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterHint(err)))
		service.WriteError(w, r, http.StatusTooManyRequests, hyperpraw.ErrCodeOverloaded, err.Error())
	case errors.Is(err, ErrNoBackends):
		service.WriteError(w, r, http.StatusServiceUnavailable, hyperpraw.ErrCodeUnavailable, err.Error())
	case err != nil:
		service.WriteError(w, r, http.StatusInternalServerError, hyperpraw.ErrCodeInternal, err.Error())
	default:
		service.WriteJSON(w, http.StatusAccepted, info)
	}
}

// retryAfterHint extracts a shed verdict's Retry-After seconds, floored at
// 1 so the header is always a valid positive delay.
func retryAfterHint(err error) int {
	secs := 1
	var se *SaturatedError
	if errors.As(err, &se) && se.RetryAfter > secs {
		secs = se.RetryAfter
	}
	return secs
}

// handleBatch fans a batch out across the backends concurrently — each
// entry routes by its own fingerprint, so a batch of distinct hypergraphs
// spreads over the backend set while resubmissions of the same hypergraph
// stay together.
func handleBatch(g *Gateway, w http.ResponseWriter, r *http.Request) {
	batch, err := service.DecodeBatch(r)
	if err != nil {
		service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, err.Error())
		return
	}
	resp := hyperpraw.BatchResponse{Jobs: make([]hyperpraw.BatchItem, len(batch.Jobs))}
	errs := make([]error, len(batch.Jobs))
	var wg sync.WaitGroup
	for i, wire := range batch.Jobs {
		wg.Add(1)
		go func(i int, wire hyperpraw.PartitionRequest) {
			defer wg.Done()
			info, err := g.Submit(r.Context(), wire)
			if err != nil {
				errs[i] = err
				resp.Jobs[i].Error = err.Error()
			} else {
				resp.Jobs[i].Job = &info
			}
		}(i, wire)
	}
	wg.Wait()
	noBackends, allSaturated := false, true
	var saturatedErr error
	for i, item := range resp.Jobs {
		if item.Job != nil {
			resp.Accepted++
			continue
		}
		resp.Rejected++
		noBackends = noBackends || errors.Is(errs[i], ErrNoBackends)
		if errors.Is(errs[i], ErrSaturated) {
			if saturatedErr == nil || retryAfterHint(errs[i]) > retryAfterHint(saturatedErr) {
				saturatedErr = errs[i]
			}
		} else {
			allSaturated = false
		}
	}
	// A fully rejected batch distinguishes fleet saturation (429 plus the
	// backends' backoff hint) from "no backend could take it" (transient,
	// retryable 503) and from malformed entries.
	status := http.StatusAccepted
	if resp.Accepted == 0 {
		switch {
		case allSaturated && saturatedErr != nil:
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterHint(saturatedErr)))
			status = http.StatusTooManyRequests
		case noBackends:
			status = http.StatusServiceUnavailable
		default:
			status = http.StatusBadRequest
		}
	}
	service.WriteJSON(w, status, resp)
}

func handleJob(g *Gateway, w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" {
		service.WriteError(w, r, http.StatusNotFound, hyperpraw.ErrCodeNotFound, "missing job id")
		return
	}
	switch sub {
	case "":
		info, err := g.Job(r.Context(), id)
		switch {
		case errors.Is(err, ErrUnknownJob):
			service.WriteError(w, r, http.StatusNotFound, hyperpraw.ErrCodeNotFound, "unknown job "+id)
		case errors.Is(err, ErrNotRecoverable):
			service.WriteError(w, r, http.StatusGone, hyperpraw.ErrCodeNotFound, err.Error())
		case err != nil:
			service.WriteError(w, r, http.StatusBadGateway, hyperpraw.ErrCodeUnavailable, err.Error())
		default:
			service.WriteJSON(w, http.StatusOK, info)
		}
	case "result":
		res, info, err := g.Result(r.Context(), id)
		switch {
		case errors.Is(err, ErrUnknownJob):
			service.WriteError(w, r, http.StatusNotFound, hyperpraw.ErrCodeNotFound, "unknown job "+id)
		case errors.Is(err, ErrNotRecoverable):
			service.WriteError(w, r, http.StatusGone, hyperpraw.ErrCodeNotFound, err.Error())
		case err != nil:
			service.WriteError(w, r, http.StatusBadGateway, hyperpraw.ErrCodeUnavailable, err.Error())
		case info.Status == hyperpraw.JobFailed:
			service.WriteError(w, r, http.StatusUnprocessableEntity, hyperpraw.ErrCodeJobFailed, info.Error)
		case res == nil:
			service.WriteJSON(w, http.StatusAccepted, info) // still queued or running
		default:
			service.WriteJSON(w, http.StatusOK, res)
		}
	case "events":
		handleEvents(g, w, r, id)
	default:
		service.WriteError(w, r, http.StatusNotFound, hyperpraw.ErrCodeNotFound, "unknown resource "+sub)
	}
}

// handleEvents proxies the backend's SSE progress stream to the consumer,
// surviving backend loss mid-stream via the gateway's failover (see
// Gateway.StreamEvents).
func handleEvents(g *Gateway, w http.ResponseWriter, r *http.Request, id string) {
	after, err := service.ParseAfter(r)
	if err != nil {
		service.WriteError(w, r, http.StatusBadRequest, hyperpraw.ErrCodeInvalidRequest, err.Error())
		return
	}
	if _, ok := g.job(id); !ok {
		service.WriteError(w, r, http.StatusNotFound, hyperpraw.ErrCodeNotFound, "unknown job "+id)
		return
	}
	flusher, ok := service.BeginSSE(w, r)
	if !ok {
		return
	}
	if g.metrics != nil {
		g.metrics.sseSubscribers.Add(1)
		defer g.metrics.sseSubscribers.Add(-1)
	}
	//nolint:errcheck // a consumer gone mid-stream is not actionable
	g.StreamEvents(r.Context(), id, after, func(ev hyperpraw.ProgressEvent) error {
		if err := service.WriteSSE(w, ev); err != nil {
			return err
		}
		flusher.Flush()
		return nil
	})
}
