package gateway

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"hyperpraw"
	"hyperpraw/client"
	"hyperpraw/internal/service"
	"hyperpraw/internal/telemetry"
)

// gwMetricValue finds the sample for the exact exposed series in body and
// returns its value, or -1 when absent.
func gwMetricValue(t *testing.T, body, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("series %s: bad value %q", series, rest)
			}
			return v
		}
	}
	return -1
}

// TestGatewayTracePropagationAndMetrics submits through an instrumented
// gateway fronting a real instrumented backend and asserts the cross-tier
// observability contract: the caller's trace ID survives gateway → backend
// → JobInfo on both tiers, both /metrics endpoints expose lint-clean
// expositions with the expected values, and /healthz carries the snapshot.
func TestGatewayTracePropagationAndMetrics(t *testing.T) {
	backendReg := telemetry.NewRegistry()
	svc := service.New(service.Config{Workers: 2, Metrics: backendReg})
	backend := httptest.NewServer(service.NewHandler(svc))
	t.Cleanup(func() {
		backend.Close()
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("backend shutdown: %v", err)
		}
	})

	reg := telemetry.NewRegistry()
	g := New(Config{Backends: []string{backend.URL}, HealthInterval: -1, Metrics: reg})
	t.Cleanup(g.Close)
	gh := httptest.NewServer(NewHandler(g))
	t.Cleanup(gh.Close)
	hc := gh.Client()
	ctx := testCtx(t)

	const trace = "gw-e2e-trace-01"
	body, err := json.Marshal(tinyWire(0))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, gh.URL+"/v1/partition", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(telemetry.TraceHeader, trace)
	resp, err := hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(telemetry.TraceHeader); got != trace {
		t.Fatalf("gateway echoed trace %q, want %q", got, trace)
	}
	var info hyperpraw.JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Trace != trace {
		t.Fatalf("gateway JobInfo.Trace = %q, want %q", info.Trace, trace)
	}

	c := client.New(gh.URL, hc)
	if _, err := c.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	done, err := g.Job(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if done.Trace != trace {
		t.Fatalf("terminal gateway JobInfo.Trace = %q, want %q", done.Trace, trace)
	}

	// The backend's own job table carries the same trace: one submission is
	// followable across tiers by ID.
	var backendTraced bool
	for _, j := range svc.Jobs() {
		backendTraced = backendTraced || j.Trace == trace
	}
	if !backendTraced {
		t.Fatalf("trace %q not found in backend jobs %+v", trace, svc.Jobs())
	}

	for _, tier := range []struct {
		base   string
		series map[string]float64
	}{
		{gh.URL, map[string]float64{
			`hpgate_jobs_submitted_total`:                1,
			`hpgate_jobs_completed_total{status="done"}`: 1,
			`hpgate_backends`:                            1,
			`hpgate_backends_healthy`:                    1,
			`hpgate_failovers_total`:                     0,
		}},
		{backend.URL, map[string]float64{
			`hyperpraw_jobs_submitted_total`:                1,
			`hyperpraw_jobs_completed_total{status="done"}`: 1,
		}},
	} {
		mresp, err := hc.Get(tier.base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		raw, err := io.ReadAll(mresp.Body)
		mresp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if mresp.StatusCode != http.StatusOK {
			t.Fatalf("%s/metrics status %d", tier.base, mresp.StatusCode)
		}
		if errs := telemetry.LintExposition(bytes.NewReader(raw)); len(errs) != 0 {
			t.Fatalf("%s/metrics lint: %v", tier.base, errs)
		}
		scraped := string(raw)
		for series, want := range tier.series {
			if got := gwMetricValue(t, scraped, series); got != want {
				t.Errorf("%s: %s = %g, want %g", tier.base, series, got, want)
			}
		}
	}

	// The proxied-call counter carries the backend URL label; at least the
	// submit and the result poll must have landed there.
	mresp, err := hc.Get(gh.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	submitSeries := `hpgate_backend_requests_total{backend="` + backend.URL + `",op="submit",outcome="ok"}`
	if got := gwMetricValue(t, string(raw), submitSeries); got != 1 {
		t.Errorf("%s = %g, want 1", submitSeries, got)
	}

	h := g.Health()
	if h.Telemetry == nil || h.Telemetry.JobsSubmitted != 1 || h.Telemetry.JobsCompleted != 1 {
		t.Fatalf("gateway snapshot %+v", h.Telemetry)
	}
}
