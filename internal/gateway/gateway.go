// Package gateway is the routing tier in front of N hpserve backends: it
// routes each partition job to a backend chosen by rendezvous hashing on
// the job's hypergraph fingerprint (so resubmissions of the same hypergraph
// hit the backend whose LRU caches are warm), fails a job over to the
// next-ranked backend when its backend dies — on submission, on result
// polling, and mid-SSE-stream alike — and optionally serves repeat
// submissions from its own result cache without touching a backend at all.
//
// The backend set is owned by an internal/membership table: backends join
// by registration (hpserve -announce) with lease renewal, or as static
// seeds from -backends, and a reconciler converges observed state (health
// probes, breaker state, lease expiry) toward the declared set — ejecting
// lease-expired members, re-admitting returners, and draining a lost
// durable member's jobs to its rendezvous peers. Routing reads immutable
// epoch-stamped membership snapshots, never a locked live map. cmd/hpgate
// exposes it over HTTP with the same API surface as hpserve plus batch
// fan-out and the /v1/cluster/members routes.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hyperpraw"
	"hyperpraw/client"
	"hyperpraw/internal/cache"
	"hyperpraw/internal/faultpoint"
	"hyperpraw/internal/graphstore"
	"hyperpraw/internal/membership"
	"hyperpraw/internal/service"
	"hyperpraw/internal/telemetry"
)

var (
	// ErrBadRequest wraps request validation failures (the client's fault).
	ErrBadRequest = errors.New("gateway: bad request")
	// ErrNoBackends is returned when no backend could accept a job.
	ErrNoBackends = errors.New("gateway: no backend available")
	// ErrUnknownJob is returned for job ids the gateway has never issued
	// (or has pruned).
	ErrUnknownJob = errors.New("gateway: unknown job")
	// ErrNotRecoverable is the gateway's verdict that a job lost its
	// backend and can never be failed over: the retention cap evicted its
	// retained wire request, so the only remedy is resubmitting the
	// original request. Served as HTTP 410 Gone.
	ErrNotRecoverable = errors.New("gateway: job not recoverable")
	// ErrSaturated is returned when every reachable backend rejected a
	// submission with 429: the whole fleet is at its admission limits, so
	// the gateway sheds the request upstream rather than queueing it
	// nowhere. Served as HTTP 429 with the backends' best Retry-After
	// hint; match the wrapped *SaturatedError to read it.
	ErrSaturated = errors.New("gateway: every backend is saturated")
	// ErrUnknownGraph is returned when a submission references a
	// hypergraph ID the gateway's own store does not hold and the routed
	// backend does not either — there is nothing to replicate, so the
	// client must upload the graph (POST /v1/hypergraphs) first. Served
	// as HTTP 404.
	ErrUnknownGraph = errors.New("gateway: unknown hypergraph")
	// ErrUnknownMember is returned when deregistration names a member the
	// table does not hold. Served as HTTP 404.
	ErrUnknownMember = errors.New("gateway: unknown member")
)

// SaturatedError carries the shed verdict's backoff hint: the largest
// Retry-After any saturated backend offered (0 when none did).
type SaturatedError struct {
	RetryAfter int
	last       error
}

func (e *SaturatedError) Error() string {
	return fmt.Sprintf("%v (last rejection: %v)", ErrSaturated, e.last)
}

func (e *SaturatedError) Unwrap() error { return ErrSaturated }

// Config tunes a Gateway; zero values select the defaults noted per field.
type Config struct {
	// Backends is the initial backend set (hpserve base URLs), compiled
	// into the member table as static seed members: they never
	// lease-expire and survive until removed explicitly. An empty set is
	// valid — backends may join purely by registration (hpserve
	// -announce).
	Backends []string
	// HTTPClient talks to the backends; nil selects a client without a
	// global timeout (SSE streams are long-lived), health probes are
	// bounded by HealthTimeout instead.
	HTTPClient *http.Client
	// HealthInterval is the period of the background reconciler loop
	// (default 2s). A negative interval disables the loop; tests drive
	// CheckBackends directly.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe (default 1s).
	HealthTimeout time.Duration
	// ProxyTimeout bounds one proxied submit/status/result call to a
	// backend (default 15s). Proxy calls run holding the job's lock, so an
	// unbounded call against a wedged backend would wedge the gateway's
	// own health and listing endpoints with it; SSE streams are long-lived
	// and not subject to it.
	ProxyTimeout time.Duration
	// FailoverLimit is how many times one job may be resubmitted to
	// another backend before the gateway marks it failed (default 3).
	FailoverLimit int
	// MaxJobs bounds how many jobs are retained for status queries; the
	// oldest finished jobs are pruned beyond it (default 4096).
	MaxJobs int
	// BreakerThreshold is how many consecutive failures trip a backend's
	// circuit breaker open (default 1: the first failure ejects, matching
	// the original binary eject/re-admit behaviour).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker withholds health probes
	// before letting one through as the half-open trial (default 0: every
	// probe is allowed, matching the original behaviour).
	BreakerCooldown time.Duration
	// LeaseTTL is the default lease granted to a member registration that
	// does not request its own TTL (default 10s). A registered member
	// whose lease lapses without a heartbeat is ejected by the reconciler
	// and its jobs are drained to peers.
	LeaseTTL time.Duration
	// SpillWatermark is the queue-occupancy fraction beyond which a
	// backend counts as saturated and rendezvous routing spills past it
	// to the next-ranked backend: a backend whose last /healthz probe
	// showed queued >= SpillWatermark * queue_depth takes new work only
	// after every unsaturated backend refused. An observed 429 marks the
	// backend saturated immediately, until the next successful probe.
	// Default 0.8; negative disables probe-derived saturation.
	SpillWatermark float64
	// RecoveryWindow is how long the gateway waits out the outage of a
	// backend that advertises a durable job store (its /healthz Durable
	// field) before failing its jobs over: a restarted durable backend
	// recovers its jobs from the store — finished results served verbatim,
	// unfinished work re-queued — which is strictly cheaper than a
	// failover recomputation. Jobs on such a backend report their last
	// known state while it is down; once the window lapses the reconciler
	// drains them to the remaining rendezvous peers in one pass.
	// Storeless backends are unaffected and fail over immediately, as
	// before (default 45s; negative disables).
	RecoveryWindow time.Duration
	// ResultCacheBytes, when positive, enables the gateway's own result
	// cache: a repeat submission whose result key (hypergraph fingerprint
	// plus option fingerprints) is cached is answered entirely at the
	// gateway, with zero backend requests. The cache is LRU by resident
	// bytes. Default 0: disabled — the backends' own result caches already
	// deduplicate computation, so the gateway tier only spends memory on
	// this when asked to.
	ResultCacheBytes int64
	// Metrics, when non-nil, receives the gateway's metric families
	// (routing, failover, membership, per-backend health and latency) and
	// is served by NewHandler on GET /metrics. Nil disables collection.
	Metrics *telemetry.Registry
	// Graphs is the gateway's own hypergraph arena store: clients upload
	// a graph once to the gateway (POST /v1/hypergraphs) and the gateway
	// replicates it to the rendezvous-chosen backend the first time a job
	// references it there. Nil selects a private memory-only store owned
	// (and closed) by the gateway.
	Graphs *graphstore.Store
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.ProxyTimeout <= 0 {
		c.ProxyTimeout = 15 * time.Second
	}
	if c.FailoverLimit <= 0 {
		c.FailoverLimit = 3
	}
	if c.BreakerThreshold < 1 {
		c.BreakerThreshold = 1
	}
	if c.BreakerCooldown < 0 {
		c.BreakerCooldown = 0
	}
	if c.SpillWatermark == 0 {
		c.SpillWatermark = 0.8
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.RecoveryWindow == 0 {
		c.RecoveryWindow = 45 * time.Second
	}
	return c
}

// backend pairs one membership record with the HTTP client that dials it.
// Wrappers are built on the fly from a membership snapshot — the Member is
// the live shared record, the wrapper just keeps the call sites terse.
type backend struct {
	url string
	cli *client.Client
	m   *membership.Member
}

func (b *backend) status() (healthy bool, fails int, durable bool) { return b.m.Status() }
func (b *backend) markDown()                                       { b.m.MarkDown() }
func (b *backend) markUp()                                         { b.m.MarkUp() }
func (b *backend) markUpDurable(durable bool)                      { b.m.MarkUpDurable(durable) }
func (b *backend) markSaturated(retryAfter int)                    { b.m.MarkSaturated(retryAfter) }
func (b *backend) loadStatus() (saturated bool, queued int)        { return b.m.LoadStatus() }

// gwJob is the gateway-side state of one routed job. The original wire
// request is retained until the job reaches a terminal state so a failover
// can resubmit it verbatim to another backend.
//
// Lock ordering: gwJob.mu may be held while taking Gateway.mu (the proxy
// paths do), so Gateway methods holding Gateway.mu must never take a
// gwJob.mu — terminal is atomic for exactly that reason (pruneLocked reads
// it under Gateway.mu).
type gwJob struct {
	mu          sync.Mutex
	id          string
	fingerprint string
	resultKey   string // gateway result-cache key; empty when the cache is off
	wire        hyperpraw.PartitionRequest
	backendURL  string
	backendID   string // the job's id on that backend
	info        hyperpraw.JobInfo
	failovers   int
	terminal    atomic.Bool
	// cached is set when the submission was answered from the gateway's
	// result cache: the job never touched a backend and serves this
	// payload directly.
	cached *hyperpraw.JobResult
	// notRecoverable holds the sticky ErrNotRecoverable verdict so every
	// result poll after the first — not just the one that triggered the
	// failed failover — serves the actionable 410.
	notRecoverable error
}

func (j *gwJob) snapshot() hyperpraw.JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.info
}

// Gateway routes partition jobs across a dynamic set of hpserve backends.
type Gateway struct {
	cfg Config

	// members owns the backend set: desired state (registration, leases,
	// static seeds) and observed state (breakers, queue occupancy), with
	// routing reading epoch-stamped snapshots.
	members *membership.Table
	// clients caches one *client.Client per member URL. Entries outlive
	// membership (a client is a base URL over the shared http.Client, so
	// a departed member's entry costs nothing and is reused on return).
	clients sync.Map

	mu     sync.Mutex
	jobs   map[string]*gwJob
	order  []string // submission order, for listing and pruning
	nextID int

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup

	graphs    *graphstore.Store
	ownGraphs bool

	replMu sync.Mutex
	repl   map[string]*replication // in-flight replications by backend+graph

	// results is the gateway's own result cache (nil unless
	// Config.ResultCacheBytes is positive).
	results *cache.Cache[hyperpraw.JobResult]

	metrics *gatewayMetrics
}

// New returns a Gateway over cfg.Backends with the reconciler loop
// running (unless cfg.HealthInterval is negative). Backends start healthy
// and are ejected by their first failed probe or proxied call.
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:    cfg,
		jobs:   make(map[string]*gwJob),
		stop:   make(chan struct{}),
		graphs: cfg.Graphs,
		repl:   make(map[string]*replication),
	}
	if g.graphs == nil {
		// A memory-only private store: Open without a directory cannot
		// fail, so the error is impossible by construction.
		g.graphs, _ = graphstore.Open(graphstore.Config{})
		g.ownGraphs = true
	}
	if cfg.ResultCacheBytes > 0 {
		g.results = cache.NewBytes[hyperpraw.JobResult](cfg.ResultCacheBytes, resultCost)
	}
	// The member table's hooks close over g.metrics and fire lazily (no
	// member exists before the seed loop below, which runs after the
	// metrics are built), but they nil-guard anyway so table construction
	// order can never panic a scrape.
	g.members = membership.New(membership.Config{
		BreakerThreshold: cfg.BreakerThreshold,
		BreakerCooldown:  cfg.BreakerCooldown,
		LeaseTTL:         cfg.LeaseTTL,
		RecoveryWindow:   cfg.RecoveryWindow,
		SpillWatermark:   cfg.SpillWatermark,
		OnTransition: func(url string, from, to membership.State) {
			if g.metrics == nil {
				return
			}
			g.metrics.breakerTransition(url, to)
			if from == membership.StateClosed && to == membership.StateOpen {
				g.metrics.ejections.WithLabelValues(url).Inc()
			}
			if to == membership.StateClosed {
				g.metrics.readmissions.WithLabelValues(url).Inc()
			}
		},
		OnEvent: func(url, event string) {
			if g.metrics == nil {
				return
			}
			g.metrics.memberTransitions.WithLabelValues(event).Inc()
		},
		Probe: func(ctx context.Context, url string) (membership.Observation, error) {
			probeCtx, cancel := context.WithTimeout(ctx, cfg.HealthTimeout)
			defer cancel()
			start := time.Now()
			h, err := g.clientFor(url).Health(probeCtx)
			g.metrics.backendRequest(url, "health", err, time.Since(start))
			if err != nil {
				return membership.Observation{}, err
			}
			return membership.Observation{Durable: h.Durable, Queued: h.Queued, QueueCap: h.QueueDepth}, nil
		},
		Drain: g.drainMember,
	})
	g.metrics = newGatewayMetrics(cfg.Metrics, g)
	for _, url := range cfg.Backends {
		g.AddBackend(url)
	}
	if cfg.HealthInterval > 0 {
		g.wg.Add(1)
		go g.healthLoop()
	}
	return g
}

// Close stops the reconciler loop and closes the gateway's graph store
// when it owns one. In-flight proxied requests are not interrupted.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	if g.ownGraphs {
		g.graphs.Close()
	}
}

// clientFor returns (building once) the client for a member URL.
func (g *Gateway) clientFor(url string) *client.Client {
	if c, ok := g.clients.Load(url); ok {
		return c.(*client.Client)
	}
	c, _ := g.clients.LoadOrStore(url, client.New(url, g.cfg.HTTPClient))
	return c.(*client.Client)
}

func (g *Gateway) wrap(m *membership.Member) *backend {
	return &backend{url: m.URL, cli: g.clientFor(m.URL), m: m}
}

// AddBackend seeds (or re-seeds) a static member by base URL; it starts
// healthy and never lease-expires.
func (g *Gateway) AddBackend(url string) {
	if g.members.Add(url) {
		g.metrics.breakerInit(url)
	}
}

// RemoveBackend drops a backend from the routing set without draining it.
// Jobs currently routed to it fail over on their next status or result
// poll.
func (g *Gateway) RemoveBackend(url string) {
	g.members.Remove(url)
}

// RegisterMember records (or lease-renews) an announced member. hpserve
// nodes started with -announce call this on startup and on every
// heartbeat.
func (g *Gateway) RegisterMember(spec hyperpraw.MemberSpec) (hyperpraw.MemberInfo, error) {
	if spec.URL == "" {
		return hyperpraw.MemberInfo{}, fmt.Errorf("%w: member url required", ErrBadRequest)
	}
	m, renewed := g.members.Register(spec.URL, spec.Durable, time.Duration(spec.TTLMS)*time.Millisecond)
	if !renewed {
		g.metrics.breakerInit(spec.URL)
	}
	return g.memberInfo(m), nil
}

// DeregisterMember removes a member and synchronously drains its jobs to
// the remaining rendezvous peers: hpserve calls it on graceful shutdown,
// operators call it to rotate a backend out.
func (g *Gateway) DeregisterMember(url string) error {
	if !g.members.Deregister(url) {
		return ErrUnknownMember
	}
	return nil
}

// Members reports the cluster view: every member's record at the current
// membership epoch.
func (g *Gateway) Members() hyperpraw.MemberList {
	snap := g.members.Snapshot()
	out := hyperpraw.MemberList{Epoch: snap.Epoch, Members: make([]hyperpraw.MemberInfo, 0, len(snap.Members))}
	for _, m := range snap.Members {
		out.Members = append(out.Members, g.memberInfo(m))
	}
	return out
}

func (g *Gateway) memberInfo(m *membership.Member) hyperpraw.MemberInfo {
	healthy, _, durable := m.Status()
	state, _ := m.BreakerState()
	saturated, queued := m.LoadStatus()
	info := hyperpraw.MemberInfo{
		URL: m.URL, Static: m.Static, Durable: durable, Healthy: healthy,
		Breaker: state.String(), Saturated: saturated, Queued: queued,
	}
	if !m.Static {
		if rem := m.LeaseRemaining(); rem > 0 {
			info.LeaseRemainingMS = rem.Milliseconds()
		}
	}
	return info
}

// drainMember resubmits every non-terminal job routed to url to the
// remaining rendezvous-ranked peers, counting each successfully moved job
// in hpgate_drains_total exactly once. The member table calls it — outside
// its own lock — on deregistration, on lease expiry, and when a durable
// member stays down past the recovery window.
func (g *Gateway) drainMember(url string) {
	g.mu.Lock()
	jobs := make([]*gwJob, 0, len(g.jobs))
	for _, j := range g.jobs {
		if !j.terminal.Load() {
			jobs = append(jobs, j)
		}
	}
	g.mu.Unlock()
	// Deliberately not a caller's context: a drain triggered by an HTTP
	// deregistration must finish even if that client disconnects.
	ctx := context.Background()
	for _, j := range jobs {
		j.mu.Lock()
		if j.backendURL == url && !j.terminal.Load() {
			if err := g.failoverLocked(ctx, j); err == nil {
				g.metrics.drains.Inc()
			}
		}
		j.mu.Unlock()
	}
}

// Backends reports every backend's state, sorted by URL.
func (g *Gateway) Backends() []hyperpraw.BackendStatus {
	snap := g.members.Snapshot()
	g.mu.Lock()
	jobs := make([]*gwJob, 0, len(g.jobs))
	for _, j := range g.jobs {
		jobs = append(jobs, j)
	}
	g.mu.Unlock()

	perBackend := make(map[string]int)
	for _, j := range jobs {
		j.mu.Lock()
		perBackend[j.backendURL]++
		j.mu.Unlock()
	}

	out := make([]hyperpraw.BackendStatus, 0, len(snap.Members))
	for _, m := range snap.Members { // snapshot members are URL-sorted
		healthy, fails, durable := m.Status()
		state, _ := m.BreakerState()
		saturated, queued := m.LoadStatus()
		out = append(out, hyperpraw.BackendStatus{
			URL: m.URL, Healthy: healthy, Fails: fails, Jobs: perBackend[m.URL], Durable: durable,
			Breaker: state.String(), Saturated: saturated, Queued: queued,
		})
	}
	return out
}

// Health reports the gateway's point-in-time state. Status is "ok" while
// at least one backend is healthy and "degraded" otherwise.
func (g *Gateway) Health() hyperpraw.GatewayHealth {
	backends := g.Backends()
	status := "degraded"
	for _, b := range backends {
		if b.Healthy {
			status = "ok"
			break
		}
	}
	members := g.Members()
	g.mu.Lock()
	jobs := len(g.jobs)
	g.mu.Unlock()
	gh := hyperpraw.GatewayHealth{
		Status: status, Backends: backends, Jobs: jobs,
		Epoch: members.Epoch, Members: members.Members,
		Telemetry: g.metrics.snapshot(),
	}
	if g.results != nil {
		st := g.results.Stats()
		gh.ResultCache = &st
	}
	return gh
}

// healthLoop runs one reconciler pass every HealthInterval: probing every
// member, ejecting members whose lease lapsed, re-admitting returners,
// and draining durable members down past the recovery window.
func (g *Gateway) healthLoop() {
	defer g.wg.Done()
	ticker := time.NewTicker(g.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-ticker.C:
			g.CheckBackends(context.Background())
		}
	}
}

// CheckBackends runs one membership reconciliation pass (probes, lease
// expiry, recovery-window drains). The background loop calls it
// periodically; tests call it directly.
func (g *Gateway) CheckBackends(ctx context.Context) {
	g.members.Reconcile(ctx)
}

// rendezvousScore is the highest-random-weight score of (key, member):
// FNV-1a over the key, a separator, and the member URL.
func rendezvousScore(key, member string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write([]byte(member))
	return h.Sum64()
}

// RendezvousOrder ranks members for key by descending rendezvous score
// (ties broken by URL so the order is total). The ranking is stable under
// membership change: removing a member only remaps the keys that ranked it
// first, and re-adding it restores the previous assignment.
func RendezvousOrder(members []string, key string) []string {
	out := append([]string(nil), members...)
	sort.Slice(out, func(i, k int) bool {
		si, sk := rendezvousScore(key, out[i]), rendezvousScore(key, out[k])
		if si != sk {
			return si > sk
		}
		return out[i] < out[k]
	})
	return out
}

// routePlan is a routing decision for one fingerprint: the backends to
// try in order, which backend the rendezvous ranking put first, and
// whether that primary was demoted out of the first slot because it is
// saturated (the spill case, as opposed to plain ejection).
type routePlan struct {
	cands   []*backend
	primary string
	spilled bool
}

// route returns the backends to try for a fingerprint: rendezvous order,
// partitioned into healthy-and-unsaturated, then healthy-but-saturated
// (the spill targets come before them), then unhealthy — each group
// keeping its rendezvous rank, so an ejected primary is still reachable as
// a last resort when every healthy backend has refused. The whole decision
// reads one membership snapshot: a concurrent registration or ejection
// lands in the next epoch's snapshot, never halfway through this plan.
func (g *Gateway) route(fingerprint string) routePlan {
	snap := g.members.Snapshot()
	ranked := RendezvousOrder(snap.URLs(), fingerprint)
	plan := routePlan{cands: make([]*backend, 0, len(ranked))}
	if len(ranked) > 0 {
		plan.primary = ranked[0]
	}
	var saturated, down []*backend
	for i, url := range ranked {
		m, ok := snap.Get(url)
		if !ok {
			continue
		}
		b := g.wrap(m)
		healthy, _, _ := b.status()
		sat, _ := b.loadStatus()
		switch {
		case healthy && !sat:
			plan.cands = append(plan.cands, b)
		case healthy:
			saturated = append(saturated, b)
			plan.spilled = plan.spilled || i == 0
		default:
			down = append(down, b)
		}
	}
	// A demoted primary only counts as spilled when somebody actually
	// ranks ahead of it now.
	plan.spilled = plan.spilled && len(plan.cands) > 0
	plan.cands = append(plan.cands, saturated...)
	plan.cands = append(plan.cands, down...)
	return plan
}

// recoverable reports whether a failed call against b should be waited
// out rather than failed over: the backend advertises a durable job store,
// so a restart recovers its jobs far more cheaply than a failover
// recomputation. Only outages younger than RecoveryWindow qualify; beyond
// it the backend is presumed gone for good and failover proceeds as for
// any other loss.
func (g *Gateway) recoverable(b *backend) bool {
	ok := b.m.Recoverable(g.cfg.RecoveryWindow)
	if ok {
		g.metrics.recoveryWaits.Inc()
	}
	return ok
}

// recoveryRetryDelay paces SSE re-attach attempts against a restarting
// durable backend: health-interval-ish, clamped so neither the retry storm
// nor the recovery latency gets out of hand.
func (g *Gateway) recoveryRetryDelay() time.Duration {
	d := g.cfg.HealthInterval
	if d <= 0 {
		d = 200 * time.Millisecond
	}
	if d > time.Second {
		d = time.Second
	}
	return d
}

// retryableSubmit reports whether a failed backend submission should move
// on to the next backend — connection errors, server-side 5xx, and 429
// (the backend's queue is full, not dead: another backend may have room) —
// or be returned to the caller (other 4xx: the request itself is at
// fault).
func retryableSubmit(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500 || apiErr.StatusCode == http.StatusTooManyRequests
	}
	return true // transport-level failure: the backend, not the request
}

// resultCost estimates a cached JobResult's resident size for the result
// cache's byte budget: the dominant slices, plus flat allowances for the
// scalar fields and optional sections.
func resultCost(res hyperpraw.JobResult) int64 {
	cost := int64(512)
	cost += int64(len(res.Parts)) * 4
	cost += int64(len(res.History)) * 48
	if res.Bench != nil {
		cost += 256
	}
	if res.Kernel != nil {
		cost += 256
	}
	return cost
}

// Submit validates wire, routes it by hypergraph fingerprint, and submits
// it to the first backend that accepts it, ejecting backends that fail
// along the way. When the gateway's result cache is enabled and already
// holds the request's result key, the submission is answered from it with
// zero backend requests. The returned JobInfo carries the gateway's job id
// and the chosen backend URL.
func (g *Gateway) Submit(ctx context.Context, wire hyperpraw.PartitionRequest) (hyperpraw.JobInfo, error) {
	parsed, err := service.ParseRequest(wire)
	if err != nil {
		return hyperpraw.JobInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	fingerprint := parsed.FingerprintKey()

	var resultKey string
	if g.results != nil {
		resultKey = parsed.ResultKey()
		if res, ok := g.results.Get(resultKey); ok {
			return g.registerCached(fingerprint, resultKey, res, telemetry.TraceFrom(ctx)), nil
		}
	}

	plan := g.route(fingerprint)
	var lastErr error = ErrNoBackends
	var unknownErr error
	allSaturated := len(plan.cands) > 0
	retryHint := 0
	for _, b := range plan.cands {
		info, err := g.submitWithGraph(ctx, b, wire)
		if err != nil {
			if ctx.Err() != nil {
				return hyperpraw.JobInfo{}, ctx.Err()
			}
			if errors.Is(err, ErrUnknownGraph) {
				// Neither this backend nor the gateway's own store holds
				// the referenced graph; another candidate might (a graph
				// uploaded directly to one backend), so keep trying.
				allSaturated = false
				unknownErr, lastErr = err, err
				continue
			}
			if !retryableSubmit(err) {
				return hyperpraw.JobInfo{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
			if hint, ok := rejected429(err); ok {
				// The backend is alive but full: mark it saturated (sticky
				// until the next probe) instead of ejecting it.
				b.markSaturated(hint)
				if hint > retryHint {
					retryHint = hint
				}
			} else {
				allSaturated = false
				if backendDown(err) {
					b.markDown()
				}
			}
			lastErr = err
			continue
		}
		b.markUp()
		g.metrics.jobsSubmitted.Inc()
		if b.url != plan.primary {
			// The rendezvous primary did not take it; the caches this
			// fingerprint warmed live elsewhere.
			g.metrics.reroutes.Inc()
			if plan.spilled {
				// Demoted for load, not health: a saturation spill.
				g.metrics.spills.Inc()
			}
		}
		return g.register(wire, fingerprint, resultKey, b.url, info, telemetry.TraceFrom(ctx)), nil
	}
	if allSaturated {
		// Every backend refused with 429: shed upstream with the fleet's
		// best backoff hint rather than disguising overload as an outage.
		g.metrics.shed.Inc()
		return hyperpraw.JobInfo{}, &SaturatedError{RetryAfter: retryHint, last: lastErr}
	}
	if unknownErr != nil {
		// The gateway has no local copy to replicate and at least one
		// live backend confirmed it does not hold the graph either: the
		// reference is unserviceable until the client uploads the graph.
		return hyperpraw.JobInfo{}, unknownErr
	}
	return hyperpraw.JobInfo{}, fmt.Errorf("%w (last error: %v)", ErrNoBackends, lastErr)
}

// rejected429 matches a backend's 429 rejection and extracts its
// Retry-After hint.
func rejected429(err error) (retryAfter int, ok bool) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusTooManyRequests {
		return apiErr.RetryAfter, true
	}
	return 0, false
}

// submitTo submits wire to one backend under the proxy deadline.
func (g *Gateway) submitTo(ctx context.Context, b *backend, wire hyperpraw.PartitionRequest) (hyperpraw.JobInfo, error) {
	if f := faultpoint.Fire(faultpoint.GatewayProxyDrop); f != nil {
		// Simulated transport loss on the proxied call: retryable, and it
		// indicts the backend exactly like a real connection failure.
		err := fmt.Errorf("gateway: faultpoint %s: proxied submit to %s dropped", f.Name, b.url)
		g.metrics.backendRequest(b.url, "submit", err, 0)
		return hyperpraw.JobInfo{}, err
	}
	callCtx, cancel := context.WithTimeout(ctx, g.cfg.ProxyTimeout)
	defer cancel()
	start := time.Now()
	info, err := b.cli.Submit(callCtx, wire)
	g.metrics.backendRequest(b.url, "submit", err, time.Since(start))
	return info, err
}

// register records a successfully routed job under a fresh gateway id.
// trace is the submitting request's trace ID, kept as a fallback when the
// backend's echoed JobInfo does not already carry it.
func (g *Gateway) register(wire hyperpraw.PartitionRequest, fingerprint, resultKey, backendURL string, info hyperpraw.JobInfo, trace string) hyperpraw.JobInfo {
	g.mu.Lock()
	g.nextID++
	id := fmt.Sprintf("gw-%06d", g.nextID)
	j := &gwJob{
		id:          id,
		fingerprint: fingerprint,
		resultKey:   resultKey,
		wire:        wire,
		backendURL:  backendURL,
		backendID:   info.ID,
		info:        info,
	}
	j.info.ID = id
	j.info.Backend = backendURL
	if j.info.Trace == "" {
		j.info.Trace = trace
	}
	g.jobs[id] = j
	g.order = append(g.order, id)
	strip := g.pruneLocked()
	g.mu.Unlock()
	g.stripJobs(strip)
	return j.snapshot()
}

// registerCached records a submission answered wholly from the gateway's
// result cache: the job is born terminal-done, carries the cached payload,
// and never touches a backend. It still counts as a submitted and
// completed job so the gateway's totals keep balancing.
func (g *Gateway) registerCached(fingerprint, resultKey string, res hyperpraw.JobResult, trace string) hyperpraw.JobInfo {
	res.ResultCacheHit = true
	g.mu.Lock()
	g.nextID++
	id := fmt.Sprintf("gw-%06d", g.nextID)
	j := &gwJob{id: id, fingerprint: fingerprint, resultKey: resultKey, cached: &res}
	j.info = hyperpraw.JobInfo{
		ID: id, Status: hyperpraw.JobDone, Fingerprint: fingerprint, Trace: trace,
	}
	g.jobs[id] = j
	g.order = append(g.order, id)
	strip := g.pruneLocked()
	g.mu.Unlock()
	g.metrics.jobsSubmitted.Inc()
	g.markTerminal(j, hyperpraw.JobDone)
	g.stripJobs(strip)
	return j.snapshot()
}

// stripJobs drops the retained wire requests pruneLocked returned, outside
// Gateway.mu (gwJob.mu must never be taken under it).
func (g *Gateway) stripJobs(strip []*gwJob) {
	for _, sj := range strip {
		sj.mu.Lock()
		sj.wire = hyperpraw.PartitionRequest{}
		sj.info.Stripped = true
		sj.mu.Unlock()
	}
}

// pruneLocked drops the oldest terminal jobs once the retention cap is
// exceeded, in a single pass over the submission order (a per-eviction
// rescan would be quadratic when the head of the table is long-running
// jobs). When the table is still over the cap afterwards (fire-and-forget
// traffic that never polls, so nothing ever turns terminal), it returns
// the oldest over-cap jobs so the caller can strip their retained wire
// requests — the memory-heavy part — outside Gateway.mu (gwJob.mu must
// never be taken under it). Stripped jobs stay queryable but can no
// longer fail over.
func (g *Gateway) pruneLocked() (strip []*gwJob) {
	over := len(g.order) - g.cfg.MaxJobs
	if over <= 0 {
		return nil
	}
	kept := g.order[:0]
	for i, id := range g.order {
		if over == 0 {
			// Cap met: the rest survives wholesale (steady-state prunes
			// evict one job and must not rescan the whole table).
			kept = append(kept, g.order[i:]...)
			break
		}
		if g.jobs[id].terminal.Load() {
			delete(g.jobs, id)
			over--
			continue
		}
		kept = append(kept, id)
	}
	g.order = kept
	if over > 0 {
		for _, id := range g.order[:over] {
			strip = append(strip, g.jobs[id])
		}
	}
	return strip
}

func (g *Gateway) job(id string) (*gwJob, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	return j, ok
}

func (g *Gateway) backendFor(url string) (*backend, bool) {
	m, ok := g.members.Get(url)
	if !ok {
		return nil, false
	}
	return g.wrap(m), true
}

// Jobs lists the gateway's jobs (last known info) in submission order.
func (g *Gateway) Jobs() []hyperpraw.JobInfo {
	g.mu.Lock()
	jobs := make([]*gwJob, 0, len(g.order))
	for _, id := range g.order {
		jobs = append(jobs, g.jobs[id])
	}
	g.mu.Unlock()
	out := make([]hyperpraw.JobInfo, len(jobs))
	for i, j := range jobs {
		out[i] = j.snapshot()
	}
	return out
}

// JobsPage lists the gateway's jobs with the same cursor semantics as
// the service tier's GET /v1/jobs: submission order, after skips
// everything up to and including that gateway job ID (IDs are monotone,
// so lexicographic comparison is submission order), limit caps the page
// and sets NextAfter when more remain, and state filters after paging.
// With no limit, cursor, or filter, the page is the whole table —
// byte-compatible with the pre-pagination listing.
func (g *Gateway) JobsPage(limit int, after string, state hyperpraw.JobStatus) hyperpraw.JobsPage {
	g.mu.Lock()
	ids := append([]string(nil), g.order...)
	jobs := make([]*gwJob, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, g.jobs[id])
	}
	g.mu.Unlock()

	page := hyperpraw.JobsPage{Jobs: []hyperpraw.JobInfo{}}
	for i, j := range jobs {
		if after != "" && ids[i] <= after {
			continue
		}
		if limit > 0 && len(page.Jobs) == limit {
			page.NextAfter = page.Jobs[limit-1].ID
			break
		}
		info := j.snapshot()
		if state != "" && info.Status != state {
			continue
		}
		page.Jobs = append(page.Jobs, info)
	}
	return page
}

// Job returns the job's current status, proxied live from its backend.
// When the backend has died (or forgot the job across a restart), the job
// is failed over to the next backend first.
func (g *Gateway) Job(ctx context.Context, id string) (hyperpraw.JobInfo, error) {
	j, ok := g.job(id)
	if !ok {
		return hyperpraw.JobInfo{}, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal.Load() {
		return j.info, nil
	}
	b, ok := g.backendFor(j.backendURL)
	if ok {
		callCtx, cancel := context.WithTimeout(telemetry.WithTrace(ctx, j.info.Trace), g.cfg.ProxyTimeout)
		start := time.Now()
		info, err := b.cli.Job(callCtx, j.backendID)
		cancel()
		g.metrics.backendRequest(b.url, "job", err, time.Since(start))
		if err == nil {
			b.markUp()
			g.mergeInfoLocked(j, info)
			return j.info, nil
		}
		if ctx.Err() != nil {
			return j.info, ctx.Err()
		}
		if !jobLost(err) {
			return j.info, err
		}
		if backendDown(err) {
			b.markDown()
		}
		if g.recoverable(b) {
			// A restarting durable backend recovers this job; report its
			// last known state instead of resubmitting it elsewhere.
			return j.info, nil
		}
	}
	if err := g.failoverLocked(ctx, j); err != nil {
		return j.info, err
	}
	return j.info, nil
}

// Result polls the job's result on its backend. It returns
// (nil, info, nil) while the job is still pending — including immediately
// after a failover resubmission. A backend that is unreachable or has
// forgotten the job triggers a failover; a job the backend reports as
// failed (a deterministic request failure, not a backend failure) is
// terminal and not retried elsewhere. Jobs answered from the gateway's
// result cache serve their payload directly, with no backend involved.
func (g *Gateway) Result(ctx context.Context, id string) (*hyperpraw.JobResult, hyperpraw.JobInfo, error) {
	j, ok := g.job(id)
	if !ok {
		return nil, hyperpraw.JobInfo{}, ErrUnknownJob
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.terminal.Load() && j.info.Status == hyperpraw.JobFailed {
		// notRecoverable is nil for ordinary failures (422); the stripped
		// verdict stays a 410 on every poll, not just the first.
		return nil, j.info, j.notRecoverable
	}
	if j.cached != nil {
		res := *j.cached
		return &res, j.info, nil
	}
	// wasDone: a result was fetched before, so the retained request is gone
	// and failover is no longer possible — if the backend has since lost
	// the payload too, the honest answer is an error, not an eternal 202.
	wasDone := j.terminal.Load() && j.info.Status == hyperpraw.JobDone
	if wasDone && g.results != nil && j.resultKey != "" {
		// The backend may be gone, but the payload was cached on the first
		// fetch; serve it without a round trip.
		if res, ok := g.results.Get(j.resultKey); ok {
			return &res, j.info, nil
		}
	}
	b, ok := g.backendFor(j.backendURL)
	if ok {
		callCtx, cancel := context.WithTimeout(telemetry.WithTrace(ctx, j.info.Trace), g.cfg.ProxyTimeout)
		start := time.Now()
		res, err := b.cli.Result(callCtx, j.backendID)
		cancel()
		g.metrics.backendRequest(b.url, "result", err, time.Since(start))
		switch {
		case err == nil:
			b.markUp()
			g.markTerminal(j, hyperpraw.JobDone)
			j.info.Status = hyperpraw.JobDone
			j.info.Error = ""
			j.wire = hyperpraw.PartitionRequest{} // no more failovers: stop pinning the upload
			if g.results != nil && j.resultKey != "" {
				g.results.Put(j.resultKey, *res)
			}
			return res, j.info, nil
		case errors.Is(err, client.ErrNotDone):
			b.markUp()
			return nil, j.info, nil
		case ctx.Err() != nil:
			return nil, j.info, ctx.Err()
		case isJobFailed(err):
			b.markUp()
			g.markTerminal(j, hyperpraw.JobFailed)
			j.info.Status = hyperpraw.JobFailed
			j.info.Error = err.Error()
			j.wire = hyperpraw.PartitionRequest{}
			return nil, j.info, nil
		case !jobLost(err):
			return nil, j.info, err
		}
		if backendDown(err) {
			b.markDown()
		}
		if g.recoverable(b) {
			// Pending until the durable backend restarts; its store will
			// serve a finished job's result verbatim and re-queue the rest.
			return nil, j.info, nil
		}
	}
	if wasDone {
		return nil, j.info, fmt.Errorf("gateway: job %s finished but its backend no longer has the result; resubmit the request", j.id)
	}
	if err := g.failoverLocked(ctx, j); err != nil {
		return nil, j.info, err
	}
	return nil, j.info, nil
}

// failoverLocked resubmits j's retained request to the next backend in its
// rendezvous order (the current, lost backend excluded). Caller holds
// j.mu. Exceeding the failover limit, or running out of backends, marks
// the job failed.
func (g *Gateway) failoverLocked(ctx context.Context, j *gwJob) error {
	if j.terminal.Load() {
		return nil
	}
	fail := func(err error) error {
		g.markTerminal(j, hyperpraw.JobFailed)
		j.info.Status = hyperpraw.JobFailed
		j.info.Error = err.Error()
		j.wire = hyperpraw.PartitionRequest{}
		if errors.Is(err, ErrNotRecoverable) {
			j.notRecoverable = err
		}
		return err
	}
	if j.failovers >= g.cfg.FailoverLimit {
		return fail(fmt.Errorf("gateway: job %s exceeded %d failovers", j.id, g.cfg.FailoverLimit))
	}
	if j.wire.Algorithm == "" {
		if j.info.Stripped {
			return fail(fmt.Errorf("%w: job %s lost its backend after the retention cap (max-jobs %d) evicted its retained request; resubmit the original request", ErrNotRecoverable, j.id, g.cfg.MaxJobs))
		}
		// A terminal transition raced with us and already dropped the wire.
		return fail(fmt.Errorf("gateway: job %s lost its backend and its request is no longer retained", j.id))
	}
	// Failover resubmissions carry the job's original trace, not the trace
	// of whichever poll happened to trigger them, so the whole lifetime of
	// one submission stays under one ID.
	ctx = telemetry.WithTrace(ctx, j.info.Trace)
	var lastErr error = ErrNoBackends
	for _, b := range g.route(j.fingerprint).cands {
		if b.url == j.backendURL {
			continue // the backend we just lost
		}
		info, err := g.submitWithGraph(ctx, b, j.wire)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, ErrUnknownGraph) {
				// This replacement backend cannot be given the graph (the
				// gateway holds no copy); another candidate may hold it.
				lastErr = err
				continue
			}
			if !retryableSubmit(err) {
				return fail(err)
			}
			if hint, ok := rejected429(err); ok {
				b.markSaturated(hint)
			} else if backendDown(err) {
				b.markDown()
			}
			lastErr = err
			continue
		}
		b.markUp()
		j.failovers++
		g.metrics.failovers.Inc()
		j.backendURL = b.url
		j.backendID = info.ID
		g.mergeInfoLocked(j, info)
		return nil
	}
	return fail(fmt.Errorf("gateway: job %s lost its backend and no other accepted it: %w", j.id, lastErr))
}

// mergeInfoLocked folds a backend's JobInfo into the gateway's view,
// preserving the gateway id and recording the serving backend. Caller
// holds j.mu.
func (g *Gateway) mergeInfoLocked(j *gwJob, info hyperpraw.JobInfo) {
	info.ID = j.id
	info.Backend = j.backendURL
	info.Stripped = j.info.Stripped // gateway-local state the backend cannot know
	if j.info.Trace != "" {
		// The submission's trace outlives backend moves; a failed-over
		// job's new backend stamped the resubmission's trace instead.
		info.Trace = j.info.Trace
	}
	j.info = info
	if info.Status == hyperpraw.JobDone || info.Status == hyperpraw.JobFailed {
		g.markTerminal(j, info.Status)
		j.wire = hyperpraw.PartitionRequest{}
	}
}

// markTerminal flips a job terminal exactly once, counting the transition.
func (g *Gateway) markTerminal(j *gwJob, status hyperpraw.JobStatus) {
	if j.terminal.CompareAndSwap(false, true) {
		g.metrics.jobCompleted(status)
	}
}

// backendDown reports whether an error indicts the backend node itself:
// transport-level failures and 5xx responses. These eject the backend
// from routing until a health probe re-admits it.
func backendDown(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		return apiErr.StatusCode >= 500
	}
	return true // transport-level failure
}

// jobLost reports whether an error means this job's copy on the backend is
// gone and a failover should resubmit it: everything backendDown covers,
// plus 404 — a restarted (or retention-pruned) backend has forgotten the
// job without the node as a whole being unhealthy, so a 404 triggers
// failover for the job but must NOT eject the backend.
func jobLost(err error) bool {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusNotFound {
		return true
	}
	return backendDown(err)
}

// isJobFailed reports whether an error is the backend's "job failed"
// verdict (422): the job ran and its request was found wanting — a
// deterministic outcome that failover cannot fix.
func isJobFailed(err error) bool {
	var apiErr *client.APIError
	return errors.As(err, &apiErr) && apiErr.StatusCode == http.StatusUnprocessableEntity
}

// StreamEvents streams job id's per-iteration progress by proxying the
// backend's SSE stream, failing over mid-stream when the backend dies.
// Sequence numbers are per backend run — a failed-over job is a fresh run
// whose frames count from 1 again — so the proxy keeps its own monotone
// output sequence and deduplicates replayed work by iteration number
// (identical for deterministic re-runs) rather than by raw sequence.
// A job answered from the gateway's result cache replays the cached run's
// history and final frame without contacting any backend.
// emit receives every forwarded event (final included) with the job id
// rewritten to the gateway's; an emit error aborts the stream (the
// consumer is gone) without ejecting the backend or failing the job over.
func (g *Gateway) StreamEvents(ctx context.Context, id string, after int, emit func(hyperpraw.ProgressEvent) error) error {
	j, ok := g.job(id)
	if !ok {
		return ErrUnknownJob
	}
	j.mu.Lock()
	cached := j.cached
	j.mu.Unlock()
	if cached != nil {
		return streamCached(id, after, *cached, emit)
	}
	lastSeq := after // resume point on the current backend's stream
	outSeq := after  // gateway-facing sequence, monotone across failovers
	lastIter := 0    // highest iteration forwarded, for cross-run dedupe
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		j.mu.Lock()
		backendURL, backendID := j.backendURL, j.backendID
		trace := j.info.Trace
		j.mu.Unlock()

		if b, ok := g.backendFor(backendURL); ok {
			emitFailed := false
			streamErr := b.cli.StreamProgress(telemetry.WithTrace(ctx, trace), backendID, lastSeq, func(ev hyperpraw.ProgressEvent) error {
				if ev.Seq > lastSeq {
					lastSeq = ev.Seq
				}
				if !ev.Final && ev.Iteration <= lastIter {
					return nil // replay overlap after a reconnect or failover
				}
				if ev.Iteration > lastIter {
					lastIter = ev.Iteration
				}
				outSeq++
				ev.Seq = outSeq
				ev.JobID = id
				if err := emit(ev); err != nil {
					emitFailed = true
					return err
				}
				return nil
			})
			if streamErr == nil {
				return nil // final event delivered
			}
			if emitFailed || ctx.Err() != nil {
				// The consumer is gone (or the request ended) — the backend
				// did nothing wrong; do not eject it or fail the job over.
				if ctx.Err() != nil {
					return ctx.Err()
				}
				return streamErr
			}
			ended := errors.Is(streamErr, client.ErrStreamEnded)
			if !ended && !jobLost(streamErr) {
				return streamErr // the request itself is at fault
			}
			// A transport failure mid-stream indicts the backend. A clean
			// EOF without a final frame does not: it is a dead process's
			// FIN, but equally a backend that retention-pruned the job
			// mid-stream — either way the job needs a failover, and if the
			// node really is down the failed resubmission or the next
			// health probe will eject it.
			if !ended && backendDown(streamErr) {
				b.markDown()
			}
			if ended {
				// A clean EOF without a final frame is equally a dying
				// durable backend's FIN (the kernel flushes its sockets)
				// and a backend that retention-pruned the job. Probe once
				// so the recovery window can engage for the former
				// instead of failing the job over to a recomputation.
				probeCtx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
				if h, err := b.cli.Health(probeCtx); err != nil {
					b.markDown()
				} else {
					b.markUpDurable(h.Durable)
				}
				cancel()
			}
			if g.recoverable(b) {
				// A restarting durable backend will replay (or, for an
				// unfinished job, re-run) the progress log, numbering its
				// frames from 1 again — restart the per-backend cursor
				// and let the iteration dedupe skip re-sent work.
				lastSeq = 0
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(g.recoveryRetryDelay()):
				}
				continue
			}
		}

		// The backend lost the job (or left the routing set): fail the job
		// over and re-attach. Result/Job failover and this path share
		// failoverLocked, so a concurrent poll may already have moved the
		// job; re-reading the mapping at the top of the loop picks that up.
		// A job that is already terminal cannot be failed over (its request
		// is no longer retained) — deliver a final frame with its settled
		// status instead of retrying forever.
		j.mu.Lock()
		resubmitted := j.backendID != backendID // a concurrent poll beat us to it
		var err error
		if !resubmitted {
			err = g.failoverLocked(ctx, j)
			resubmitted = err == nil && j.backendID != backendID
		}
		terminal, status, errMsg := j.terminal.Load(), j.info.Status, j.info.Error
		j.mu.Unlock()
		if err != nil || terminal {
			outSeq++
			ev := hyperpraw.ProgressEvent{JobID: id, Seq: outSeq, Final: true,
				Status: status, Error: errMsg}
			if err != nil {
				ev.Status = hyperpraw.JobFailed
				if ev.Error == "" {
					ev.Error = err.Error()
				}
			}
			if emitErr := emit(ev); emitErr != nil {
				return emitErr
			}
			return nil
		}
		if resubmitted {
			lastSeq = 0 // the replacement run numbers its frames from 1
		}
	}
}

// streamCached replays a cached result's iteration history as SSE frames
// (honouring the after cursor) followed by the final done frame — the same
// shape a backend's own cache-hit replay produces.
func streamCached(id string, after int, res hyperpraw.JobResult, emit func(hyperpraw.ProgressEvent) error) error {
	seq := 0
	for _, pt := range res.History {
		seq++
		if seq <= after {
			continue
		}
		if err := emit(hyperpraw.ProgressEvent{JobID: id, Seq: seq, IterationPoint: pt}); err != nil {
			return err
		}
	}
	seq++
	if seq <= after {
		return nil
	}
	return emit(hyperpraw.ProgressEvent{JobID: id, Seq: seq, Final: true, Status: hyperpraw.JobDone})
}
