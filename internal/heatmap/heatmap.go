// Package heatmap renders square matrices (bandwidth, traffic) to CSV, PGM
// images and ASCII previews, reproducing the heatmap figures of the paper
// (Fig 1 and Fig 6). Rendering is typically done in log scale, matching the
// paper's log(MB/s) and log(bytes sent) colour bars.
package heatmap

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Options controls rendering.
type Options struct {
	// Log applies log10 to strictly positive values; zeros map to the
	// minimum of the scale (the paper's heatmaps are log-scaled).
	Log bool
	// Title is included as a comment where the format allows it.
	Title string
}

// WriteCSV writes the matrix as comma-separated values, one row per line.
// When opts.Log is set, values are log10-transformed (zeros become empty
// cells).
func WriteCSV(w io.Writer, m [][]float64, opts Options) error {
	bw := bufio.NewWriter(w)
	if opts.Title != "" {
		fmt.Fprintf(bw, "# %s\n", opts.Title)
	}
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(',')
			}
			if opts.Log {
				if v > 0 {
					fmt.Fprintf(bw, "%.4f", math.Log10(v))
				}
				// zero: empty cell
			} else {
				fmt.Fprintf(bw, "%.6g", v)
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WritePGM writes the matrix as a portable graymap (P2), normalising values
// (after optional log transform) to 0–255. Any viewer or converter renders
// it directly; the output is the reproduction of the paper's heatmap panels.
func WritePGM(w io.Writer, m [][]float64, opts Options) error {
	n := len(m)
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "P2\n")
	if opts.Title != "" {
		fmt.Fprintf(bw, "# %s\n", opts.Title)
	}
	fmt.Fprintf(bw, "%d %d\n255\n", n, n)
	lo, hi := transformRange(m, opts.Log)
	span := hi - lo
	for _, row := range m {
		for j, v := range row {
			if j > 0 {
				bw.WriteByte(' ')
			}
			g := 0
			if span > 0 {
				t := transform(v, opts.Log, lo)
				g = int(255 * (t - lo) / span)
				if g < 0 {
					g = 0
				}
				if g > 255 {
					g = 255
				}
			}
			fmt.Fprintf(bw, "%d", g)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ASCII renders a coarse size×size character preview of the matrix using a
// luminance ramp, for terminal inspection. The matrix is block-averaged down
// to the requested size.
func ASCII(m [][]float64, size int, opts Options) string {
	n := len(m)
	if n == 0 {
		return ""
	}
	if size <= 0 || size > n {
		size = n
	}
	ramp := " .:-=+*#%@"
	down := make([][]float64, size)
	block := float64(n) / float64(size)
	for bi := 0; bi < size; bi++ {
		down[bi] = make([]float64, size)
		for bj := 0; bj < size; bj++ {
			iLo, iHi := int(float64(bi)*block), int(float64(bi+1)*block)
			jLo, jHi := int(float64(bj)*block), int(float64(bj+1)*block)
			if iHi <= iLo {
				iHi = iLo + 1
			}
			if jHi <= jLo {
				jHi = jLo + 1
			}
			sum, cnt := 0.0, 0
			for i := iLo; i < iHi && i < n; i++ {
				for j := jLo; j < jHi && j < n; j++ {
					sum += m[i][j]
					cnt++
				}
			}
			if cnt > 0 {
				down[bi][bj] = sum / float64(cnt)
			}
		}
	}
	lo, hi := transformRange(down, opts.Log)
	span := hi - lo
	var sb strings.Builder
	if opts.Title != "" {
		sb.WriteString(opts.Title)
		sb.WriteByte('\n')
	}
	for _, row := range down {
		for _, v := range row {
			idx := 0
			if span > 0 {
				t := transform(v, opts.Log, lo)
				idx = int(float64(len(ramp)-1) * (t - lo) / span)
				if idx < 0 {
					idx = 0
				}
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SaveCSV writes the matrix to a CSV file at path.
func SaveCSV(path string, m [][]float64, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteCSV(f, m, opts)
}

// SavePGM writes the matrix to a PGM image at path.
func SavePGM(path string, m [][]float64, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WritePGM(f, m, opts)
}

func transform(v float64, logScale bool, lo float64) float64 {
	if !logScale {
		return v
	}
	if v <= 0 {
		return lo
	}
	return math.Log10(v)
}

// transformRange returns the min and max of the (optionally log-scaled)
// positive entries. With log scaling, zero entries are excluded from the
// range and later clamp to the minimum.
func transformRange(m [][]float64, logScale bool) (lo, hi float64) {
	first := true
	for _, row := range m {
		for _, v := range row {
			if logScale && v <= 0 {
				continue
			}
			t := v
			if logScale {
				t = math.Log10(v)
			}
			if first {
				lo, hi = t, t
				first = false
				continue
			}
			if t < lo {
				lo = t
			}
			if t > hi {
				hi = t
			}
		}
	}
	return lo, hi
}
