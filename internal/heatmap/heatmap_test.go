package heatmap

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sample() [][]float64 {
	return [][]float64{
		{0, 10, 100},
		{10, 0, 1000},
		{100, 1000, 0},
	}
}

func TestWriteCSVLinear(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sample(), Options{Title: "test"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# test\n") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	if lines[1] != "0,10,100" {
		t.Fatalf("row 0: %q", lines[1])
	}
}

func TestWriteCSVLog(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, sample(), Options{Log: true}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// log10(10) = 1; zeros are empty cells.
	if !strings.HasPrefix(lines[0], ",1.0000,2.0000") {
		t.Fatalf("log row: %q", lines[0])
	}
}

func TestWritePGMValid(t *testing.T) {
	var sb strings.Builder
	if err := WritePGM(&sb, sample(), Options{Log: true, Title: "hm"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "P2\n") {
		t.Fatalf("not a PGM: %q", out[:10])
	}
	if !strings.Contains(out, "3 3\n255\n") {
		t.Fatal("missing dimensions")
	}
	// Largest value (1000) must map to 255 somewhere.
	if !strings.Contains(out, "255") {
		t.Fatal("no max gray value")
	}
}

func TestASCIIRendering(t *testing.T) {
	out := ASCII(sample(), 3, Options{Log: true, Title: "t"})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 3 rows
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	for _, l := range lines[1:] {
		if len(l) != 3 {
			t.Fatalf("row width %d: %q", len(l), l)
		}
	}
}

func TestASCIIDownsamples(t *testing.T) {
	big := make([][]float64, 20)
	for i := range big {
		big[i] = make([]float64, 20)
		for j := range big[i] {
			big[i][j] = float64(i * j)
		}
	}
	out := ASCII(big, 5, Options{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("%d lines", len(lines))
	}
}

func TestASCIIEmpty(t *testing.T) {
	if out := ASCII(nil, 4, Options{}); out != "" {
		t.Fatalf("empty matrix rendered %q", out)
	}
}

func TestASCIIConstantMatrix(t *testing.T) {
	m := [][]float64{{5, 5}, {5, 5}}
	out := ASCII(m, 2, Options{})
	if out == "" {
		t.Fatal("constant matrix rendered nothing")
	}
}

func TestSaveFiles(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "m.csv")
	pgmPath := filepath.Join(dir, "m.pgm")
	if err := SaveCSV(csvPath, sample(), Options{}); err != nil {
		t.Fatal(err)
	}
	if err := SavePGM(pgmPath, sample(), Options{Log: true}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{csvPath, pgmPath} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestSaveErrors(t *testing.T) {
	if err := SaveCSV("/nonexistent/dir/x.csv", sample(), Options{}); err == nil {
		t.Fatal("expected error")
	}
	if err := SavePGM("/nonexistent/dir/x.pgm", sample(), Options{}); err == nil {
		t.Fatal("expected error")
	}
}
