package netsim

import (
	"container/heap"
	"fmt"

	"hyperpraw/internal/topology"
)

// Message is a single point-to-point transfer for the event simulator.
type Message struct {
	Src   int
	Dst   int
	Bytes int64
}

// EventSim is a message-level discrete-event simulator. Each core serialises
// its sends in submission order and serialises its receives; a transfer
// starts when both endpoints are free (a rendezvous-style MPI send) and lasts
// latency + bytes/bandwidth. The simulator is deterministic: ties are broken
// by sender rank.
//
// EventSim is O(M log p) in the number of messages and exists for small
// workloads and for validating AggregateModel trends; the benchmark harness
// uses AggregateModel for full runs.
type EventSim struct {
	machine *topology.Machine
	queues  [][]Message // per-sender FIFO
	count   int
}

// NewEventSim returns an empty simulator over machine.
func NewEventSim(machine *topology.Machine) *EventSim {
	return &EventSim{
		machine: machine,
		queues:  make([][]Message, machine.NumCores()),
	}
}

// Submit appends a message to its sender's queue. Self-sends are ignored.
func (s *EventSim) Submit(msg Message) {
	if msg.Src == msg.Dst {
		return
	}
	n := s.machine.NumCores()
	if msg.Src < 0 || msg.Src >= n || msg.Dst < 0 || msg.Dst >= n {
		panic(fmt.Sprintf("netsim: message rank out of range: %d -> %d (n=%d)", msg.Src, msg.Dst, n))
	}
	s.queues[msg.Src] = append(s.queues[msg.Src], msg)
	s.count++
}

// Pending returns the number of messages submitted but not yet simulated.
func (s *EventSim) Pending() int { return s.count }

type senderItem struct {
	sender int
	start  float64 // candidate start time of the sender's next message
}

type senderHeap []senderItem

func (h senderHeap) Len() int { return len(h) }
func (h senderHeap) Less(i, j int) bool {
	if h[i].start != h[j].start {
		return h[i].start < h[j].start
	}
	return h[i].sender < h[j].sender
}
func (h senderHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *senderHeap) Push(x any)   { *h = append(*h, x.(senderItem)) }
func (h *senderHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func candidateStart(sendFree, recvFree []float64, msg Message) float64 {
	st := sendFree[msg.Src]
	if recvFree[msg.Dst] > st {
		st = recvFree[msg.Dst]
	}
	return st
}

// Run simulates all submitted messages and resets the queues. The returned
// Result's MakespanSec is the time the last transfer completes; PerCoreSec is
// each core's accumulated busy time (send plus receive occupancy).
func (s *EventSim) Run() Result {
	n := s.machine.NumCores()
	sendFree := make([]float64, n)
	recvFree := make([]float64, n)
	busy := make([]float64, n)
	next := make([]int, n)
	var totalBytes, totalMsgs int64

	h := &senderHeap{}
	for i := 0; i < n; i++ {
		if len(s.queues[i]) > 0 {
			heap.Push(h, senderItem{sender: i, start: candidateStart(sendFree, recvFree, s.queues[i][0])})
		}
	}

	makespan := 0.0
	for h.Len() > 0 {
		it := heap.Pop(h).(senderItem)
		msg := s.queues[it.sender][next[it.sender]]
		// The queued candidate start may be stale: the receiver can have
		// become busier since this item was pushed. If the fresh start is
		// later than another sender's candidate, requeue and retry.
		start := candidateStart(sendFree, recvFree, msg)
		if h.Len() > 0 && start > (*h)[0].start {
			heap.Push(h, senderItem{sender: it.sender, start: start})
			continue
		}
		dur := s.machine.Latency(msg.Src, msg.Dst) + float64(msg.Bytes)/(s.machine.Bandwidth(msg.Src, msg.Dst)*1e6)
		end := start + dur
		sendFree[msg.Src] = end
		recvFree[msg.Dst] = end
		busy[msg.Src] += dur
		busy[msg.Dst] += dur
		totalBytes += msg.Bytes
		totalMsgs++
		if end > makespan {
			makespan = end
		}
		next[it.sender]++
		if next[it.sender] < len(s.queues[it.sender]) {
			nm := s.queues[it.sender][next[it.sender]]
			heap.Push(h, senderItem{sender: it.sender, start: candidateStart(sendFree, recvFree, nm)})
		}
	}

	// Reset for reuse.
	for i := range s.queues {
		s.queues[i] = s.queues[i][:0]
	}
	s.count = 0

	return Result{
		MakespanSec:   makespan,
		PerCoreSec:    busy,
		TotalBytes:    totalBytes,
		TotalMessages: totalMsgs,
	}
}
