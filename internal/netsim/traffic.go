// Package netsim simulates point-to-point message traffic over a topology.Machine.
//
// It stands in for the MPI runtime of the original work. Two complementary
// models are provided:
//
//   - AggregateModel: a closed-form LogP-style cost estimate over a traffic
//     matrix. Each core serialises its sends and its receives; the cost of a
//     (src → dst) flow is nmsg·latency + bytes/bandwidth, and the simulated
//     makespan is the busiest core's total. This scales to the paper's full
//     workloads (hundreds of millions of messages) because it works on
//     partition-pair aggregates.
//
//   - EventSim: a message-level discrete-event simulation with sender and
//     receiver serialisation, for small workloads and for validating the
//     aggregate model's trends.
//
// Both consume the ground-truth machine matrices, so a partitioner that
// places heavy-communicating work on high-bandwidth links yields lower
// simulated runtimes — the paper's central effect.
package netsim

import "fmt"

// Traffic accumulates per-pair message counts and byte volumes between ranks.
// The zero value is unusable; create one with NewTraffic.
type Traffic struct {
	n     int
	bytes []int64 // n*n, row-major, [src*n+dst]
	msgs  []int64
}

// NewTraffic returns an empty traffic account over n ranks.
func NewTraffic(n int) *Traffic {
	return &Traffic{n: n, bytes: make([]int64, n*n), msgs: make([]int64, n*n)}
}

// NumRanks returns the number of ranks the account covers.
func (t *Traffic) NumRanks() int { return t.n }

// Add records count messages of size bytesEach from src to dst. Self-sends
// (src == dst) are ignored: they model intra-partition traffic, which costs
// nothing in the paper's benchmark.
func (t *Traffic) Add(src, dst int, count, bytesEach int64) {
	if src == dst {
		return
	}
	if src < 0 || src >= t.n || dst < 0 || dst >= t.n {
		panic(fmt.Sprintf("netsim: rank out of range: %d -> %d (n=%d)", src, dst, t.n))
	}
	idx := src*t.n + dst
	t.msgs[idx] += count
	t.bytes[idx] += count * bytesEach
}

// Bytes returns the byte volume sent from src to dst.
func (t *Traffic) Bytes(src, dst int) int64 { return t.bytes[src*t.n+dst] }

// Messages returns the message count from src to dst.
func (t *Traffic) Messages(src, dst int) int64 { return t.msgs[src*t.n+dst] }

// TotalBytes returns the total byte volume over all pairs.
func (t *Traffic) TotalBytes() int64 {
	var s int64
	for _, b := range t.bytes {
		s += b
	}
	return s
}

// TotalMessages returns the total message count over all pairs.
func (t *Traffic) TotalMessages() int64 {
	var s int64
	for _, m := range t.msgs {
		s += m
	}
	return s
}

// BytesMatrix returns the byte volumes as a dense matrix (rows = senders).
func (t *Traffic) BytesMatrix() [][]float64 {
	out := make([][]float64, t.n)
	for i := range out {
		out[i] = make([]float64, t.n)
		for j := 0; j < t.n; j++ {
			out[i][j] = float64(t.bytes[i*t.n+j])
		}
	}
	return out
}

// Merge adds other's traffic into t. Both accounts must cover the same
// number of ranks.
func (t *Traffic) Merge(other *Traffic) {
	if other.n != t.n {
		panic(fmt.Sprintf("netsim: merging traffic over %d ranks into %d ranks", other.n, t.n))
	}
	for i := range t.bytes {
		t.bytes[i] += other.bytes[i]
		t.msgs[i] += other.msgs[i]
	}
}
