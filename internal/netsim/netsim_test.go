package netsim

import (
	"math"
	"testing"
	"testing/quick"

	"hyperpraw/internal/stats"
	"hyperpraw/internal/topology"
)

func testMachine(t *testing.T, cores int) *topology.Machine {
	t.Helper()
	return topology.MustNew(topology.Archer(), cores, 1)
}

func TestTrafficAccounting(t *testing.T) {
	tr := NewTraffic(4)
	tr.Add(0, 1, 3, 100)
	tr.Add(1, 0, 1, 50)
	tr.Add(2, 2, 9, 999) // self-send ignored
	if tr.Bytes(0, 1) != 300 || tr.Messages(0, 1) != 3 {
		t.Fatalf("0->1: %d bytes %d msgs", tr.Bytes(0, 1), tr.Messages(0, 1))
	}
	if tr.Bytes(1, 0) != 50 {
		t.Fatalf("1->0: %d", tr.Bytes(1, 0))
	}
	if tr.Bytes(2, 2) != 0 {
		t.Fatal("self-send recorded")
	}
	if tr.TotalBytes() != 350 || tr.TotalMessages() != 4 {
		t.Fatalf("totals %d %d", tr.TotalBytes(), tr.TotalMessages())
	}
}

func TestTrafficMerge(t *testing.T) {
	a := NewTraffic(3)
	a.Add(0, 1, 1, 10)
	b := NewTraffic(3)
	b.Add(0, 1, 2, 10)
	b.Add(2, 0, 1, 5)
	a.Merge(b)
	if a.Bytes(0, 1) != 30 || a.Bytes(2, 0) != 5 {
		t.Fatalf("merge wrong: %d %d", a.Bytes(0, 1), a.Bytes(2, 0))
	}
}

func TestTrafficMergeSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTraffic(2).Merge(NewTraffic(3))
}

func TestTrafficBytesMatrix(t *testing.T) {
	tr := NewTraffic(2)
	tr.Add(0, 1, 2, 25)
	m := tr.BytesMatrix()
	if m[0][1] != 50 || m[1][0] != 0 {
		t.Fatalf("matrix %v", m)
	}
}

func TestAggregateEmptyTraffic(t *testing.T) {
	m := testMachine(t, 8)
	res := AggregateModel{Overlap: 0.5}.Estimate(m, NewTraffic(8))
	if res.MakespanSec != 0 {
		t.Fatalf("empty traffic makespan %g", res.MakespanSec)
	}
}

func TestAggregateSingleFlow(t *testing.T) {
	m := testMachine(t, 8)
	tr := NewTraffic(8)
	tr.Add(0, 1, 10, 1000)
	res := AggregateModel{Overlap: 0}.Estimate(m, tr)
	want := 10*m.Latency(0, 1) + 10000/(m.Bandwidth(0, 1)*1e6)
	// Overlap 0: sender cost = receiver cost = want; makespan is max over
	// cores of send+recv, and core 0 only sends, core 1 only receives.
	if math.Abs(res.MakespanSec-want)/want > 1e-9 {
		t.Fatalf("makespan %g, want %g", res.MakespanSec, want)
	}
	if res.TotalBytes != 10000 || res.TotalMessages != 10 {
		t.Fatalf("totals %d %d", res.TotalBytes, res.TotalMessages)
	}
}

func TestAggregateSlowLinkCostsMore(t *testing.T) {
	m := testMachine(t, 96)
	fast := NewTraffic(96)
	fast.Add(0, 1, 100, 100000) // intra-socket
	slow := NewTraffic(96)
	slow.Add(0, 95, 100, 100000) // cross-blade
	model := AggregateModel{Overlap: 0.5}
	rFast := model.Estimate(m, fast)
	rSlow := model.Estimate(m, slow)
	if rFast.MakespanSec >= rSlow.MakespanSec {
		t.Fatalf("fast link %g not faster than slow link %g", rFast.MakespanSec, rSlow.MakespanSec)
	}
}

func TestAggregateOverlapReducesTime(t *testing.T) {
	m := testMachine(t, 8)
	tr := NewTraffic(8)
	tr.Add(0, 1, 10, 100000)
	tr.Add(1, 0, 10, 100000)
	half := AggregateModel{Overlap: 0}.Estimate(m, tr)
	full := AggregateModel{Overlap: 1}.Estimate(m, tr)
	if full.MakespanSec >= half.MakespanSec {
		t.Fatalf("overlap did not reduce time: %g vs %g", full.MakespanSec, half.MakespanSec)
	}
}

func TestAggregateRankMismatchPanics(t *testing.T) {
	m := testMachine(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	AggregateModel{}.Estimate(m, NewTraffic(4))
}

func TestEventSimSingleMessage(t *testing.T) {
	m := testMachine(t, 4)
	sim := NewEventSim(m)
	sim.Submit(Message{Src: 0, Dst: 1, Bytes: 1000})
	res := sim.Run()
	want := m.Latency(0, 1) + 1000/(m.Bandwidth(0, 1)*1e6)
	if math.Abs(res.MakespanSec-want)/want > 1e-9 {
		t.Fatalf("makespan %g, want %g", res.MakespanSec, want)
	}
}

func TestEventSimSerialisesSender(t *testing.T) {
	m := testMachine(t, 4)
	sim := NewEventSim(m)
	sim.Submit(Message{Src: 0, Dst: 1, Bytes: 1000})
	sim.Submit(Message{Src: 0, Dst: 2, Bytes: 1000})
	res := sim.Run()
	t1 := m.Latency(0, 1) + 1000/(m.Bandwidth(0, 1)*1e6)
	t2 := m.Latency(0, 2) + 1000/(m.Bandwidth(0, 2)*1e6)
	want := t1 + t2
	if math.Abs(res.MakespanSec-want)/want > 1e-9 {
		t.Fatalf("sender not serialised: %g, want %g", res.MakespanSec, want)
	}
}

func TestEventSimParallelSendersOverlap(t *testing.T) {
	m := testMachine(t, 4)
	sim := NewEventSim(m)
	sim.Submit(Message{Src: 0, Dst: 1, Bytes: 100000})
	sim.Submit(Message{Src: 2, Dst: 3, Bytes: 100000})
	res := sim.Run()
	t1 := m.Latency(0, 1) + 100000/(m.Bandwidth(0, 1)*1e6)
	t2 := m.Latency(2, 3) + 100000/(m.Bandwidth(2, 3)*1e6)
	want := math.Max(t1, t2)
	if math.Abs(res.MakespanSec-want)/want > 1e-9 {
		t.Fatalf("independent transfers did not overlap: %g, want %g", res.MakespanSec, want)
	}
}

func TestEventSimSelfSendIgnored(t *testing.T) {
	m := testMachine(t, 4)
	sim := NewEventSim(m)
	sim.Submit(Message{Src: 1, Dst: 1, Bytes: 1e6})
	if sim.Pending() != 0 {
		t.Fatal("self-send queued")
	}
	if res := sim.Run(); res.MakespanSec != 0 {
		t.Fatal("self-send simulated")
	}
}

func TestEventSimResetsAfterRun(t *testing.T) {
	m := testMachine(t, 4)
	sim := NewEventSim(m)
	sim.Submit(Message{Src: 0, Dst: 1, Bytes: 500})
	first := sim.Run()
	if sim.Pending() != 0 {
		t.Fatal("queues not reset")
	}
	sim.Submit(Message{Src: 0, Dst: 1, Bytes: 500})
	second := sim.Run()
	if first.MakespanSec != second.MakespanSec {
		t.Fatal("runs not independent")
	}
}

func TestEventSimOutOfRangePanics(t *testing.T) {
	m := testMachine(t, 4)
	sim := NewEventSim(m)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	sim.Submit(Message{Src: 0, Dst: 9, Bytes: 1})
}

func TestEventAndAggregateAgreeOnRanking(t *testing.T) {
	// Build two traffic patterns — one over fast links, one over slow — and
	// verify both simulators rank them the same way.
	m := testMachine(t, 96)
	mkMessages := func(dst int) ([]Message, *Traffic) {
		var msgs []Message
		tr := NewTraffic(96)
		for k := 0; k < 50; k++ {
			msgs = append(msgs, Message{Src: 0, Dst: dst, Bytes: 50000})
			tr.Add(0, dst, 1, 50000)
		}
		return msgs, tr
	}
	run := func(msgs []Message) float64 {
		sim := NewEventSim(m)
		for _, msg := range msgs {
			sim.Submit(msg)
		}
		return sim.Run().MakespanSec
	}
	model := AggregateModel{Overlap: 0.5}
	fastMsgs, fastTr := mkMessages(1)
	slowMsgs, slowTr := mkMessages(95)
	evFast, evSlow := run(fastMsgs), run(slowMsgs)
	agFast, agSlow := model.Estimate(m, fastTr).MakespanSec, model.Estimate(m, slowTr).MakespanSec
	if (evFast < evSlow) != (agFast < agSlow) {
		t.Fatalf("simulators disagree: event %g/%g aggregate %g/%g", evFast, evSlow, agFast, agSlow)
	}
}

// Property: aggregate makespan is monotone under added traffic.
func TestQuickAggregateMonotone(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 16, 1)
	model := AggregateModel{Overlap: 0.5}
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		tr := NewTraffic(16)
		for k := 0; k < 20; k++ {
			tr.Add(rng.Intn(16), rng.Intn(16), int64(rng.Intn(5)+1), int64(rng.Intn(10000)+1))
		}
		before := model.Estimate(m, tr).MakespanSec
		tr.Add(rng.Intn(16), (rng.Intn(15)+1+rng.Intn(16))%16, 10, 100000)
		// ensure src != dst for the added flow
		tr.Add(0, 1, 10, 100000)
		after := model.Estimate(m, tr).MakespanSec
		return after >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: event sim conserves bytes and message counts.
func TestQuickEventSimConservation(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 8, 1)
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		sim := NewEventSim(m)
		var wantBytes, wantMsgs int64
		for k := 0; k < 30; k++ {
			src, dst := rng.Intn(8), rng.Intn(8)
			b := int64(rng.Intn(5000) + 1)
			sim.Submit(Message{Src: src, Dst: dst, Bytes: b})
			if src != dst {
				wantBytes += b
				wantMsgs++
			}
		}
		res := sim.Run()
		return res.TotalBytes == wantBytes && res.TotalMessages == wantMsgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
