package netsim

import (
	"testing"

	"hyperpraw/internal/stats"
	"hyperpraw/internal/topology"
)

func benchTraffic(n int, flows int) *Traffic {
	rng := stats.NewRNG(9)
	tr := NewTraffic(n)
	for i := 0; i < flows; i++ {
		tr.Add(rng.Intn(n), rng.Intn(n), int64(rng.Intn(20)+1), 4096)
	}
	return tr
}

func BenchmarkAggregateEstimate(b *testing.B) {
	m := topology.MustNew(topology.Archer(), 128, 1)
	tr := benchTraffic(128, 5000)
	model := AggregateModel{Overlap: 0.5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Estimate(m, tr)
	}
}

func BenchmarkEventSim(b *testing.B) {
	m := topology.MustNew(topology.Archer(), 32, 1)
	rng := stats.NewRNG(3)
	msgs := make([]Message, 5000)
	for i := range msgs {
		src := rng.Intn(32)
		dst := (src + 1 + rng.Intn(31)) % 32
		msgs[i] = Message{Src: src, Dst: dst, Bytes: 4096}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim := NewEventSim(m)
		for _, msg := range msgs {
			sim.Submit(msg)
		}
		sim.Run()
	}
}

func BenchmarkTrafficAdd(b *testing.B) {
	tr := NewTraffic(64)
	for i := 0; i < b.N; i++ {
		tr.Add(i%64, (i+7)%64, 3, 4096)
	}
}
