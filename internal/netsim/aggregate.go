package netsim

import "hyperpraw/internal/topology"

// Result reports the outcome of a simulation.
type Result struct {
	// MakespanSec is the simulated wall-clock time: the busiest core's total
	// communication time.
	MakespanSec float64
	// PerCoreSec is each core's total communication busy time.
	PerCoreSec []float64
	// TotalBytes and TotalMessages echo the traffic volume simulated.
	TotalBytes    int64
	TotalMessages int64
}

// AggregateModel estimates communication time from per-pair aggregates.
type AggregateModel struct {
	// Overlap is the fraction of receive time hidden behind send time
	// (0 = fully serialised half-duplex NIC, 1 = full duplex). The paper's
	// synthetic benchmark exchanges messages both ways over MPI, where
	// overlap is partial; the default 0.5 sits between the extremes. The
	// value rescales all runtimes uniformly and does not change any
	// algorithm comparison.
	Overlap float64
}

// Estimate computes the simulated communication time of the traffic on the
// machine. Bandwidths are MB/s (1 MB = 1e6 bytes here, matching mpiGraph's
// reporting convention).
func (a AggregateModel) Estimate(m *topology.Machine, t *Traffic) Result {
	n := t.NumRanks()
	if n != m.NumCores() {
		panic("netsim: traffic rank count does not match machine core count")
	}
	overlap := a.Overlap
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 1 {
		overlap = 1
	}
	send := make([]float64, n)
	recv := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			msgs := t.Messages(i, j)
			if msgs == 0 {
				continue
			}
			bytes := t.Bytes(i, j)
			cost := float64(msgs)*m.Latency(i, j) + float64(bytes)/(m.Bandwidth(i, j)*1e6)
			send[i] += cost
			recv[j] += cost
		}
	}
	res := Result{
		PerCoreSec:    make([]float64, n),
		TotalBytes:    t.TotalBytes(),
		TotalMessages: t.TotalMessages(),
	}
	for i := 0; i < n; i++ {
		hi, lo := send[i], recv[i]
		if lo > hi {
			hi, lo = lo, hi
		}
		// Full overlap: max(send, recv). No overlap: send+recv.
		busy := hi + (1-overlap)*lo
		res.PerCoreSec[i] = busy
		if busy > res.MakespanSec {
			res.MakespanSec = busy
		}
	}
	return res
}
