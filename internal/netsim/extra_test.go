package netsim

import (
	"math"
	"testing"

	"hyperpraw/internal/stats"
	"hyperpraw/internal/topology"
)

func TestEventSimDeterministic(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 16, 1)
	rng := stats.NewRNG(11)
	msgs := make([]Message, 500)
	for i := range msgs {
		src := rng.Intn(16)
		msgs[i] = Message{Src: src, Dst: (src + 1 + rng.Intn(15)) % 16, Bytes: int64(rng.Intn(9000) + 1)}
	}
	run := func() Result {
		sim := NewEventSim(m)
		for _, msg := range msgs {
			sim.Submit(msg)
		}
		return sim.Run()
	}
	a, b := run(), run()
	if a.MakespanSec != b.MakespanSec || a.TotalBytes != b.TotalBytes {
		t.Fatal("event simulation not deterministic")
	}
	for i := range a.PerCoreSec {
		if a.PerCoreSec[i] != b.PerCoreSec[i] {
			t.Fatalf("per-core time differs at %d", i)
		}
	}
}

func TestEventSimMakespanAtLeastCriticalPath(t *testing.T) {
	// The makespan can never be below the busiest single endpoint's total
	// transfer time.
	m := topology.MustNew(topology.Archer(), 8, 1)
	sim := NewEventSim(m)
	var senderTotal float64
	for i := 0; i < 20; i++ {
		dst := 1 + i%7
		sim.Submit(Message{Src: 0, Dst: dst, Bytes: 10000})
		senderTotal += m.Latency(0, dst) + 10000/(m.Bandwidth(0, dst)*1e6)
	}
	res := sim.Run()
	if res.MakespanSec < senderTotal-1e-12 {
		t.Fatalf("makespan %g below sender serialisation bound %g", res.MakespanSec, senderTotal)
	}
}

func TestAggregatePerCoreConsistent(t *testing.T) {
	// The makespan must equal the max of the per-core times.
	m := topology.MustNew(topology.Archer(), 12, 2)
	rng := stats.NewRNG(4)
	tr := NewTraffic(12)
	for i := 0; i < 50; i++ {
		tr.Add(rng.Intn(12), rng.Intn(12), int64(rng.Intn(9)+1), int64(rng.Intn(5000)+1))
	}
	res := AggregateModel{Overlap: 0.5}.Estimate(m, tr)
	maxCore := 0.0
	for _, c := range res.PerCoreSec {
		maxCore = math.Max(maxCore, c)
	}
	if res.MakespanSec != maxCore {
		t.Fatalf("makespan %g != max per-core %g", res.MakespanSec, maxCore)
	}
}

func TestAggregateOverlapClamped(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 4, 1)
	tr := NewTraffic(4)
	tr.Add(0, 1, 5, 1000)
	tr.Add(1, 0, 5, 1000)
	under := AggregateModel{Overlap: -3}.Estimate(m, tr)
	zero := AggregateModel{Overlap: 0}.Estimate(m, tr)
	over := AggregateModel{Overlap: 7}.Estimate(m, tr)
	one := AggregateModel{Overlap: 1}.Estimate(m, tr)
	if under.MakespanSec != zero.MakespanSec {
		t.Fatal("negative overlap not clamped to 0")
	}
	if over.MakespanSec != one.MakespanSec {
		t.Fatal("overlap > 1 not clamped to 1")
	}
}

func TestTrafficAddNegativeRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTraffic(4).Add(-1, 2, 1, 1)
}
