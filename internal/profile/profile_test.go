package profile

import (
	"math"
	"testing"
	"testing/quick"

	"hyperpraw/internal/stats"
	"hyperpraw/internal/topology"
)

func TestRingProfileApproximatesGroundTruth(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 48, 1)
	bw := RingProfile(m, Config{MessageBytes: 1 << 20, Repeats: 3, NoiseSigma: 0.02, Seed: 7})
	// With large probes the measured bandwidth should be within ~15% of the
	// ground truth for every pair.
	for i := 0; i < 48; i++ {
		for j := 0; j < 48; j++ {
			if i == j {
				if bw[i][j] != 0 {
					t.Fatalf("diagonal not zero at %d", i)
				}
				continue
			}
			truth := m.Bandwidth(i, j)
			if rel := math.Abs(bw[i][j]-truth) / truth; rel > 0.15 {
				t.Fatalf("pair (%d,%d): measured %g, truth %g (rel %g)", i, j, bw[i][j], truth, rel)
			}
		}
	}
}

func TestRingProfileSymmetric(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 24, 2)
	bw := RingProfile(m, DefaultConfig())
	for i := 0; i < 24; i++ {
		for j := 0; j < 24; j++ {
			if bw[i][j] != bw[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestRingProfilePreservesTierOrdering(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 96, 3)
	bw := RingProfile(m, DefaultConfig())
	// Intra-socket must profile faster than cross-blade.
	if bw[0][1] <= bw[0][95] {
		t.Fatalf("tier ordering lost: socket %g vs blade %g", bw[0][1], bw[0][95])
	}
}

func TestRingProfileDeterministic(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 16, 4)
	cfg := DefaultConfig()
	a := RingProfile(m, cfg)
	b := RingProfile(m, cfg)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("profiling not deterministic")
			}
		}
	}
}

func TestRingProfileNoiseless(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 8, 5)
	bw := RingProfile(m, Config{MessageBytes: 1 << 22, Repeats: 1, NoiseSigma: 0, Seed: 1})
	// Without noise and with huge probes, latency is negligible and the
	// measurement should be nearly exact.
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			truth := m.Bandwidth(i, j)
			if rel := math.Abs(bw[i][j]-truth) / truth; rel > 0.02 {
				t.Fatalf("noiseless profile off by %g at (%d,%d)", rel, i, j)
			}
		}
	}
}

func TestCostMatrixBounds(t *testing.T) {
	m := topology.MustNew(topology.Archer(), 48, 6)
	bw := RingProfile(m, DefaultConfig())
	cost := CostMatrix(bw)
	minC, maxC := math.Inf(1), math.Inf(-1)
	for i := 0; i < 48; i++ {
		if cost[i][i] != 0 {
			t.Fatalf("diagonal cost %g at %d", cost[i][i], i)
		}
		for j := 0; j < 48; j++ {
			if i == j {
				continue
			}
			c := cost[i][j]
			if c < 1 || c > 2 {
				t.Fatalf("cost %g out of [1,2] at (%d,%d)", c, i, j)
			}
			minC = math.Min(minC, c)
			maxC = math.Max(maxC, c)
		}
	}
	if math.Abs(minC-1) > 1e-9 || math.Abs(maxC-2) > 1e-9 {
		t.Fatalf("cost range [%g,%g], want exactly [1,2]", minC, maxC)
	}
}

func TestCostMatrixInvertsBandwidth(t *testing.T) {
	// Higher bandwidth must map to lower cost.
	bw := [][]float64{
		{0, 100, 10},
		{100, 0, 50},
		{10, 50, 0},
	}
	cost := CostMatrix(bw)
	if cost[0][1] >= cost[0][2] {
		t.Fatalf("fast link cost %g not below slow link cost %g", cost[0][1], cost[0][2])
	}
	if cost[0][1] != 1 {
		t.Fatalf("fastest link cost %g, want 1", cost[0][1])
	}
	if cost[0][2] != 2 {
		t.Fatalf("slowest link cost %g, want 2", cost[0][2])
	}
}

func TestCostMatrixFlat(t *testing.T) {
	bw := [][]float64{
		{0, 5, 5},
		{5, 0, 5},
		{5, 5, 0},
	}
	cost := CostMatrix(bw)
	for i := range cost {
		for j := range cost[i] {
			want := 1.0
			if i == j {
				want = 0
			}
			if cost[i][j] != want {
				t.Fatalf("flat cost[%d][%d] = %g, want %g", i, j, cost[i][j], want)
			}
		}
	}
}

func TestCostMatrixRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	CostMatrix([][]float64{{0, 1}, {0}})
}

func TestUniformCost(t *testing.T) {
	c := UniformCost(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := 1.0
			if i == j {
				want = 0
			}
			if c[i][j] != want {
				t.Fatalf("uniform cost[%d][%d] = %g", i, j, c[i][j])
			}
		}
	}
}

// Property: CostMatrix always yields zero diagonal and off-diagonal values
// in [1,2] for arbitrary positive bandwidth matrices.
func TestQuickCostMatrixInvariants(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%10 + 2
		rng := stats.NewRNG(seed)
		bw := make([][]float64, n)
		for i := range bw {
			bw[i] = make([]float64, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				v := rng.Float64()*1000 + 1
				bw[i][j], bw[j][i] = v, v
			}
		}
		cost := CostMatrix(bw)
		for i := 0; i < n; i++ {
			if cost[i][i] != 0 {
				return false
			}
			for j := 0; j < n; j++ {
				if i != j && (cost[i][j] < 1-1e-12 || cost[i][j] > 2+1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
