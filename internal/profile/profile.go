// Package profile implements peer-to-peer bandwidth profiling and the
// communication cost matrix of the paper's §4.2.
//
// The original work runs mpiGraph-style ring benchmarks before partitioning:
// MPI processes arranged in a ring iteratively send messages at every offset
// and time the exchanges, yielding a full p×p measured-bandwidth matrix.
// HyperPRAW then normalises bandwidths into costs:
//
//	C(i,j) = 2 − (b_ij − b_min) / (b_max − b_min),  C(i,i) = 0
//
// so the fastest link costs 1 and the slowest 2, making the algorithm
// independent of the machine's absolute bandwidth magnitudes.
//
// Here the "machine" is a topology.Machine, and measurement is simulated:
// each ring exchange derives its duration from the machine's ground-truth
// latency and bandwidth plus log-normal measurement noise, so — exactly as on
// real hardware — the profiled matrix approximates but never equals the
// ground truth.
package profile

import (
	"fmt"

	"hyperpraw/internal/stats"
	"hyperpraw/internal/topology"
)

// Config controls a profiling run.
type Config struct {
	// MessageBytes is the probe message size. mpiGraph defaults to messages
	// large enough to be bandwidth-dominated; 512 KiB is used here.
	MessageBytes int64
	// Repeats is how many timed exchanges are averaged per pair.
	Repeats int
	// NoiseSigma is the sigma of log-normal measurement noise per timing
	// (0 = perfect measurements).
	NoiseSigma float64
	// Seed drives the measurement noise.
	Seed uint64
}

// DefaultConfig mirrors a realistic profiling setup: 512 KiB probes, three
// repeats, ~3% measurement noise.
func DefaultConfig() Config {
	return Config{MessageBytes: 512 << 10, Repeats: 3, NoiseSigma: 0.03, Seed: 1}
}

// RingProfile measures the peer-to-peer bandwidth matrix of m using the
// ring schedule of mpiGraph: for every offset d in 1..p−1, rank i exchanges
// probe messages with rank (i+d) mod p. The returned matrix is in MB/s,
// symmetrised (both directions of a pair are timed and averaged), with a
// zero diagonal.
func RingProfile(m *topology.Machine, cfg Config) [][]float64 {
	if cfg.MessageBytes <= 0 {
		cfg.MessageBytes = 512 << 10
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 1
	}
	p := m.NumCores()
	bw := make([][]float64, p)
	for i := range bw {
		bw[i] = make([]float64, p)
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x9d5f)
	probe := float64(cfg.MessageBytes)
	for d := 1; d < p; d++ {
		for i := 0; i < p; i++ {
			j := (i + d) % p
			// Time `Repeats` one-way transfers i→j and average.
			total := 0.0
			for r := 0; r < cfg.Repeats; r++ {
				t := m.Latency(i, j) + probe/(m.Bandwidth(i, j)*1e6)
				if cfg.NoiseSigma > 0 {
					t *= rng.LogNormal(0, cfg.NoiseSigma)
				}
				total += t
			}
			mean := total / float64(cfg.Repeats)
			bw[i][j] = probe / mean / 1e6 // MB/s
		}
	}
	// Symmetrise: mpiGraph reports send and receive curves; HyperPRAW's cost
	// matrix is symmetric, so average the two directions.
	for i := 0; i < p; i++ {
		for j := i + 1; j < p; j++ {
			avg := (bw[i][j] + bw[j][i]) / 2
			bw[i][j], bw[j][i] = avg, avg
		}
		bw[i][i] = 0
	}
	return bw
}

// CostMatrix converts a measured bandwidth matrix into the normalised
// communication cost matrix of §4.2: costs span [1, 2] off-diagonal (1 =
// fastest link, 2 = slowest), diagonal 0. A flat matrix (all off-diagonal
// bandwidths equal) yields uniform cost 1, degenerating gracefully to the
// architecture-oblivious case.
func CostMatrix(bandwidth [][]float64) [][]float64 {
	p := len(bandwidth)
	min, max := 0.0, 0.0
	first := true
	for i := 0; i < p; i++ {
		if len(bandwidth[i]) != p {
			panic(fmt.Sprintf("profile: bandwidth matrix is ragged at row %d", i))
		}
		for j := 0; j < p; j++ {
			if i == j {
				continue
			}
			b := bandwidth[i][j]
			if first {
				min, max = b, b
				first = false
				continue
			}
			if b < min {
				min = b
			}
			if b > max {
				max = b
			}
		}
	}
	cost := make([][]float64, p)
	span := max - min
	for i := range cost {
		cost[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			if i == j {
				continue
			}
			if span == 0 {
				cost[i][j] = 1
				continue
			}
			cost[i][j] = 2 - (bandwidth[i][j]-min)/span
		}
	}
	return cost
}

// UniformCost returns the architecture-oblivious cost matrix used by
// HyperPRAW-basic: every off-diagonal cost is 1, diagonal 0.
func UniformCost(p int) [][]float64 {
	cost := make([][]float64, p)
	for i := range cost {
		cost[i] = make([]float64, p)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 1
			}
		}
	}
	return cost
}
