package hyperpraw

import (
	"hyperpraw/internal/core"
	"hyperpraw/internal/hier"
	"hyperpraw/internal/hypergraph"
	"hyperpraw/internal/mapping"
)

// This file extends the facade with the repository's additions beyond the
// paper's headline algorithm: topology mapping (the related-work
// alternative), parallel restreaming (§8.2 future work), and repartitioning
// with migration costs.

// MapToTopology relabels an existing partition onto the machine's ranks so
// heavy-communicating partition pairs land on fast links (LibTopoMap-style;
// see internal/mapping). Cut metrics are unchanged; only placement moves.
func MapToTopology(h *Hypergraph, parts []int32, m *Machine, env Environment) ([]int32, error) {
	return mapping.MapPartition(h, parts, m, env.PhysCost, mapping.DefaultConfig())
}

// PartitionAwareParallel is PartitionAware using the parallel restreaming
// variant (one concurrent stream per worker, GraSP-style: workers stream
// against a slightly stale shared view, reconciled at superstep barriers).
// workers <= 0 selects GOMAXPROCS. With one worker the result is
// move-for-move identical to PartitionAware; with more the result is valid
// but not run-to-run deterministic. At the core level the parallel kernel
// honours Config.InitialParts (warm starts seed the shared assignment
// exactly as in the serial path) but rejects Config.MigrationPenalty with
// core.ErrParallelMigration rather than silently ignoring it — use
// Repartition for migration-aware restreaming.
func PartitionAwareParallel(h *Hypergraph, env Environment, opts *Options, workers int) ([]int32, PartitionResult, error) {
	o := opts.orDefault()
	res, err := core.PartitionParallel(h, prawConfig(env.PhysCost, env.physIndex, o), workers)
	if err != nil {
		return nil, PartitionResult{}, err
	}
	return res.Parts, res, nil
}

// Repartition restreams starting from an existing assignment, charging
// migrationPenalty per unit of vertex weight moved away from its current
// partition (the dynamic load-balancing scenario of the paper's related
// work [6,7]). A zero penalty reduces to a warm-started PartitionAware.
func Repartition(h *Hypergraph, current []int32, env Environment, migrationPenalty float64, opts *Options) ([]int32, PartitionResult, error) {
	o := opts.orDefault()
	cfg := prawConfig(env.PhysCost, env.physIndex, o)
	cfg.InitialParts = current
	cfg.MigrationPenalty = migrationPenalty
	pr, err := core.New(h, cfg)
	if err != nil {
		return nil, PartitionResult{}, err
	}
	defer pr.Release()
	res := pr.Run()
	return res.Parts, res, nil
}

// PartitionHierarchical partitions h across the machine's hierarchy in
// Zoltan's hierarchical style (related work §2): a coarse multilevel phase
// across nodes, then a fine phase across each node's cores. Architecture
// awareness here is qualitative (which ranks share a node), not quantitative
// (profiled link costs) — the contrast the paper draws with HyperPRAW.
func PartitionHierarchical(h *Hypergraph, m *Machine, opts *Options) ([]int32, error) {
	o := opts.orDefault()
	cfg := hier.DefaultConfig()
	cfg.ImbalanceTolerance = o.ImbalanceTolerance
	cfg.Seed = o.Seed
	return hier.Partition(h, m, cfg)
}

// SavePartitionVector writes a partition assignment (one line per vertex).
func SavePartitionVector(path string, parts []int32) error {
	return hypergraph.SavePartition(path, parts)
}

// LoadPartitionVector reads a partition assignment written by
// SavePartitionVector (or by hMetis/PaToH tooling).
func LoadPartitionVector(path string) ([]int32, error) {
	return hypergraph.LoadPartition(path)
}
