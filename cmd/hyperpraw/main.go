// Command hyperpraw partitions a hypergraph file and reports quality
// metrics.
//
// Usage:
//
//	hyperpraw -k 64 [-algo aware|basic|zoltan] [-cores N] [-out parts.txt] input.hgr
//
// The input may be hMetis (.hgr) or MatrixMarket (.mtx). The simulated
// machine used for profiling (aware mode) and evaluation is ARCHER-like with
// -cores cores (default: k).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hyperpraw"
)

func main() {
	k := flag.Int("k", 16, "number of partitions")
	algo := flag.String("algo", "aware", "partitioner: aware | basic | zoltan")
	seed := flag.Uint64("seed", 1, "random seed (machine noise, baseline tie-breaking)")
	tol := flag.Float64("tol", 1.10, "imbalance tolerance (max/mean)")
	iters := flag.Int("iters", 100, "HyperPRAW restreaming iteration cap")
	outPath := flag.String("out", "", "write the partition vector (one line per vertex) to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hyperpraw [flags] input.hgr")
		flag.PrintDefaults()
		os.Exit(2)
	}
	h, err := hyperpraw.LoadHypergraph(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	stats := h.ComputeStats()
	fmt.Printf("loaded %s: %d vertices, %d hyperedges, %d pins (avg cardinality %.2f)\n",
		h.Name(), stats.Vertices, stats.Hyperedges, stats.TotalNNZ, stats.AvgCardinality)

	machine := hyperpraw.NewArcherMachine(*k, *seed)
	env := hyperpraw.Profile(machine)
	opts := &hyperpraw.Options{ImbalanceTolerance: *tol, MaxIterations: *iters, Seed: *seed}

	var parts []int32
	switch *algo {
	case "aware":
		var res hyperpraw.PartitionResult
		parts, res, err = hyperpraw.PartitionAware(h, env, opts)
		if err == nil {
			fmt.Printf("hyperpraw-aware: %d restreaming iterations (%s)\n", res.Iterations, res.Stopped)
		}
	case "basic":
		var res hyperpraw.PartitionResult
		parts, res, err = hyperpraw.PartitionBasic(h, env, opts)
		if err == nil {
			fmt.Printf("hyperpraw-basic: %d restreaming iterations (%s)\n", res.Iterations, res.Stopped)
		}
	case "zoltan":
		parts, err = hyperpraw.PartitionMultilevel(h, *k, opts)
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatal(err)
	}

	rep := hyperpraw.Evaluate(h, parts, env)
	fmt.Printf("quality: hyperedge cut %d, SOED %d, comm cost %.4g, imbalance %.3f\n",
		rep.HyperedgeCut, rep.SOED, rep.CommCost, rep.Imbalance)

	bres, err := hyperpraw.SimulateBenchmark(machine, h, parts, nil)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated benchmark runtime: %.6g s (%d messages, %d bytes)\n",
		bres.MakespanSec, bres.TotalMessages, bres.TotalBytes)

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, p := range parts {
			fmt.Fprintln(w, p)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote partition to", *outPath)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hyperpraw:", err)
	os.Exit(1)
}
