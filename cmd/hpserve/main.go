// Command hpserve exposes the repository's partitioners as a long-lived
// HTTP JSON service backed by internal/service: a bounded worker pool, a
// job queue, and LRU caches for profiled machine environments and finished
// partition results.
//
// Usage:
//
//	hpserve -addr :8080 -workers 8
//	hpserve -addr :8080 -store /var/lib/hyperpraw/jobs   # jobs survive restarts
//	hpserve -addr :8081 -announce http://gatehost:9090   # join an hpgate cluster
//
// API (see README.md for curl examples):
//
//	POST /v1/partition          submit a job
//	POST /v1/partition/batch    submit many jobs in one request
//	GET  /v1/jobs               list jobs (?limit= ?after= ?state=)
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/result   finished payload
//	GET  /v1/jobs/{id}/events   SSE per-iteration progress
//	*    /v1/hypergraphs[/...]  hypergraph resources: upload a graph once
//	                            (chunked + resumable), reference it from
//	                            any number of jobs by hypergraph_id
//	GET  /v1/algorithms         supported algorithms
//	GET  /healthz               liveness + statistics
//	GET  /metrics               Prometheus metrics
//
// Several hpserve instances can be fronted by an hpgate gateway
// (cmd/hpgate) for fingerprint-routed, failover-capable serving. With
// -announce the node registers itself in the gateway's member table and
// keeps its lease alive by heartbeat — no -backends flag needed on the
// gateway — and deregisters on graceful shutdown, at which point the
// gateway drains its jobs to the remaining peers.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof listener
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hyperpraw/internal/faultpoint"
	"hyperpraw/internal/graphstore"
	"hyperpraw/internal/service"
	"hyperpraw/internal/store"
	"hyperpraw/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 256, "job queue depth")
	maxQueue := flag.Int("max-queue", 0, "alias for -queue (admission bound; overrides it when set)")
	maxInflightBytes := flag.Int64("max-inflight-bytes", 0, "total inline-upload bytes admitted across queued and running jobs; over it submissions get 429 + Retry-After (0 = unlimited)")
	envCache := flag.Int("env-cache", 16, "profiled-environment LRU entries")
	resultCache := flag.Int("result-cache", 128, "partition-result LRU entries")
	storeDir := flag.String("store", "", "durable job store directory; jobs survive a restart (empty = in-memory only)")
	graphDir := flag.String("graph-store", "", "hypergraph arena directory; committed graphs are mmap-backed and survive restarts (empty = memory-only arenas)")
	graphCacheBytes := flag.Int64("graph-cache-bytes", 0, "resident arena byte budget; over it unreferenced graphs are evicted LRU-first (0 = unlimited)")
	maxUploadBytes := flag.Int64("max-upload-bytes", 0, "one hypergraph upload's byte limit (0 = 4GiB default)")
	announce := flag.String("announce", "", "hpgate base URL to register this node with (empty = no registration)")
	advertise := flag.String("advertise", "", "base URL the gateway should dial this node at (default derived from -addr)")
	announceTTL := flag.Duration("announce-ttl", 10*time.Second, "membership lease requested from the gateway; heartbeats renew it at a third of this")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown deadline for the HTTP listener")
	drainTimeout := flag.Duration("drain-timeout", 0, "separate deadline for draining in-flight jobs; still-queued jobs are journaled when it expires (0 = use -drain)")
	pprofAddr := flag.String("pprof", "", "pprof listen address (e.g. localhost:6060); empty disables profiling")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hpserve [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if *maxQueue > 0 {
		*queue = *maxQueue
	}

	if spec, err := faultpoint.ArmFromEnv(); err != nil {
		log.Fatalf("hpserve: %s: %v", faultpoint.EnvVar, err)
	} else if spec != "" {
		log.Printf("hpserve: FAULT INJECTION ARMED via %s: %s", faultpoint.EnvVar, spec)
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		if st, err = store.Open(*storeDir); err != nil {
			log.Fatalf("hpserve: opening job store: %v", err)
		}
		log.Printf("hpserve: durable job store at %s (%d jobs recovered)", *storeDir, st.Count())
	}

	reg := telemetry.NewRegistry()
	reg.GaugeVec("hyperpraw_build_info",
		"Build information; the value is always 1.", "go_version").
		WithLabelValues(runtime.Version()).Set(1)

	graphs, err := graphstore.Open(graphstore.Config{
		Dir:            *graphDir,
		MaxBytes:       *graphCacheBytes,
		MaxUploadBytes: *maxUploadBytes,
	})
	if err != nil {
		log.Fatalf("hpserve: opening graph store: %v", err)
	}
	if *graphDir != "" {
		log.Printf("hpserve: graph store at %s (%d graphs known)", *graphDir, graphs.Stats().Known)
	}

	svc := service.New(service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		MaxInflightBytes: *maxInflightBytes,
		EnvCacheSize:     *envCache,
		ResultCacheSize:  *resultCache,
		Store:            st,
		Graphs:           graphs,
		Metrics:          reg,
	})
	server := &http.Server{Addr: *addr, Handler: service.NewHandler(svc)}

	var pprofServer *http.Server
	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; serving it on its own
		// listener keeps /debug off the public API surface. A real Server
		// (not ListenAndServe) so shutdown below can close it gracefully.
		pprofServer = &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux}
		go func() {
			log.Printf("hpserve: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("hpserve: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	log.Printf("hpserve: listening on %s", *addr)

	var announcer *service.Announcer
	if *announce != "" {
		self := *advertise
		if self == "" {
			if strings.HasPrefix(*addr, ":") {
				self = "http://127.0.0.1" + *addr
			} else {
				self = "http://" + *addr
			}
		}
		announcer = service.StartAnnouncer(service.AnnounceConfig{
			Gateway: *announce,
			Self:    self,
			Durable: st != nil,
			TTL:     *announceTTL,
			Logf:    log.Printf,
		})
		log.Printf("hpserve: announcing %s to %s (lease %s)", self, *announce, *announceTTL)
	}

	select {
	case err := <-errc:
		log.Fatalf("hpserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("hpserve: draining (deadline %s)", *drain)
	if announcer != nil {
		// Deregister before anything else winds down: the gateway stops
		// routing new work here immediately and synchronously drains this
		// node's jobs to its peers.
		announcer.Close()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Printf("hpserve: http shutdown: %v", err)
	}
	if pprofServer != nil {
		if err := pprofServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("hpserve: pprof shutdown: %v", err)
		}
	}
	// The job drain gets its own deadline when -drain-timeout is set: an
	// operator can give long-running kernels more (or less) time than the
	// HTTP listener without coupling the two. On expiry the service
	// journals still-unfinished jobs so a durable restart re-queues them.
	drainCtx := shutdownCtx
	if *drainTimeout > 0 {
		var drainCancel context.CancelFunc
		drainCtx, drainCancel = context.WithTimeout(context.Background(), *drainTimeout)
		defer drainCancel()
	}
	if err := svc.Shutdown(drainCtx); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			log.Printf("hpserve: drain deadline exceeded; abandoning in-flight jobs")
		} else {
			log.Printf("hpserve: service shutdown: %v", err)
		}
	}
	if st != nil {
		// Abandoned in-flight jobs stay journaled as unfinished: the next
		// start re-queues them from the store.
		if err := st.Close(); err != nil {
			log.Printf("hpserve: closing job store: %v", err)
		}
	}
	graphs.Close()
	log.Printf("hpserve: bye")
}
