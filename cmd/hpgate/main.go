// Command hpgate is the routing tier in front of N hpserve backends
// (internal/gateway): it routes each job to a backend chosen by rendezvous
// hashing on the job's hypergraph fingerprint so resubmissions hit warm
// caches, reconciles the cluster member table against observed health with
// automatic ejection and re-admission, and fails jobs over to the next
// backend when one dies. Backends running with a durable job store
// (hpserve -store) are instead waited out for -recovery-window: a
// restarted durable backend recovers its jobs from the store, which beats
// recomputing them elsewhere.
//
// Membership is declarative: backends register themselves with
// POST /v1/cluster/members (hpserve -announce) and heartbeat to renew a
// lease; a node that stops heartbeating is ejected when its lease lapses,
// and a durable node that deregisters has its jobs drained to peers.
// -backends still works and seeds the same table with static (non-leased)
// members, so a gateway may boot with no backends at all and converge as
// nodes announce.
//
// Usage:
//
//	hpgate -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082
//	hpgate -addr :8080                  # empty table; members announce themselves
//
// API (the hpserve surface, gateway-routed, plus cluster routes):
//
//	POST /v1/partition          submit a job (routed by fingerprint)
//	POST /v1/partition/batch    submit many jobs, fanned out across backends
//	GET  /v1/jobs               list gateway jobs (?limit= ?after= ?state=)
//	GET  /v1/jobs/{id}          job status
//	GET  /v1/jobs/{id}/result   finished payload
//	GET  /v1/jobs/{id}/events   SSE per-iteration progress
//	*    /v1/hypergraphs[/...]  hypergraph resources: upload a graph once
//	                            to the gateway; it is replicated to the
//	                            rendezvous-chosen backend on first use
//	GET  /v1/algorithms         supported algorithms
//	GET  /v1/backends           backend set and health
//	GET  /v1/cluster/members    member table with lease + breaker state
//	POST /v1/cluster/members    register a member / renew its lease
//	DELETE /v1/cluster/members/{url}  deregister + drain a member
//	GET  /healthz               gateway + backend health
//	GET  /metrics               Prometheus metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // profiling endpoints on the -pprof listener
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hyperpraw/internal/faultpoint"
	"hyperpraw/internal/gateway"
	"hyperpraw/internal/graphstore"
	"hyperpraw/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	backends := flag.String("backends", "", "comma-separated hpserve base URLs seeded as static members (optional; members may instead self-register via hpserve -announce)")
	healthInterval := flag.Duration("health-interval", 2*time.Second, "backend health probe period")
	healthTimeout := flag.Duration("health-timeout", time.Second, "single health probe deadline")
	failovers := flag.Int("failovers", 3, "max failover resubmissions per job")
	maxJobs := flag.Int("max-jobs", 4096, "retained job entries")
	recoveryWindow := flag.Duration("recovery-window", 45*time.Second, "how long to wait for a durable (-store) backend to restart before failing its jobs over (negative disables)")
	breakerThreshold := flag.Int("breaker-threshold", 1, "consecutive failures before a backend's circuit breaker opens")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "how long an open breaker withholds health probes before the half-open trial")
	spillWatermark := flag.Float64("spill-watermark", 0.8, "queue-occupancy fraction beyond which routing spills past a saturated backend (negative disables)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "default membership lease granted to self-registered members that do not request one")
	resultCacheBytes := flag.Int64("result-cache-bytes", 0, "gateway result cache byte budget; repeat submissions of an identical request are answered without touching a backend (0 = disabled)")
	graphDir := flag.String("graph-store", "", "gateway hypergraph arena directory; uploaded graphs are mmap-backed and survive restarts (empty = memory-only)")
	graphCacheBytes := flag.Int64("graph-cache-bytes", 0, "resident arena byte budget for the gateway's graph store (0 = unlimited)")
	maxUploadBytes := flag.Int64("max-upload-bytes", 0, "one hypergraph upload's byte limit (0 = 4GiB default)")
	drain := flag.Duration("drain", 10*time.Second, "graceful shutdown deadline")
	pprofAddr := flag.String("pprof", "", "pprof listen address (e.g. localhost:6060); empty disables profiling")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hpgate [-backends URL[,URL...]] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if spec, err := faultpoint.ArmFromEnv(); err != nil {
		log.Fatalf("hpgate: %s: %v", faultpoint.EnvVar, err)
	} else if spec != "" {
		log.Printf("hpgate: FAULT INJECTION ARMED via %s: %s", faultpoint.EnvVar, spec)
	}

	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}

	reg := telemetry.NewRegistry()
	reg.GaugeVec("hpgate_build_info",
		"Build information; the value is always 1.", "go_version").
		WithLabelValues(runtime.Version()).Set(1)

	graphs, err := graphstore.Open(graphstore.Config{
		Dir:            *graphDir,
		MaxBytes:       *graphCacheBytes,
		MaxUploadBytes: *maxUploadBytes,
	})
	if err != nil {
		log.Fatalf("hpgate: opening graph store: %v", err)
	}
	if *graphDir != "" {
		log.Printf("hpgate: graph store at %s (%d graphs known)", *graphDir, graphs.Stats().Known)
	}

	gw := gateway.New(gateway.Config{
		Backends:         urls,
		HealthInterval:   *healthInterval,
		HealthTimeout:    *healthTimeout,
		FailoverLimit:    *failovers,
		MaxJobs:          *maxJobs,
		RecoveryWindow:   *recoveryWindow,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		SpillWatermark:   *spillWatermark,
		LeaseTTL:         *leaseTTL,
		ResultCacheBytes: *resultCacheBytes,
		Metrics:          reg,
		Graphs:           graphs,
	})
	server := &http.Server{Addr: *addr, Handler: gateway.NewHandler(gw)}

	var pprofServer *http.Server
	if *pprofAddr != "" {
		// net/http/pprof registers on the default mux; a dedicated listener
		// keeps /debug off the public API surface, and a real Server lets
		// shutdown below close it gracefully.
		pprofServer = &http.Server{Addr: *pprofAddr, Handler: http.DefaultServeMux}
		go func() {
			log.Printf("hpgate: pprof on http://%s/debug/pprof/", *pprofAddr)
			if err := pprofServer.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("hpgate: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- server.ListenAndServe() }()
	if len(urls) == 0 {
		log.Printf("hpgate: listening on %s with an empty member table; waiting for members to announce", *addr)
	} else {
		log.Printf("hpgate: listening on %s, fronting %d seed backends: %s", *addr, len(urls), strings.Join(urls, ", "))
	}

	select {
	case err := <-errc:
		log.Fatalf("hpgate: %v", err)
	case <-ctx.Done():
	}

	log.Printf("hpgate: draining (deadline %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		log.Printf("hpgate: http shutdown: %v", err)
	}
	if pprofServer != nil {
		if err := pprofServer.Shutdown(shutdownCtx); err != nil {
			log.Printf("hpgate: pprof shutdown: %v", err)
		}
	}
	gw.Close()
	graphs.Close()
	log.Printf("hpgate: bye")
}
