// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [table1|fig1|fig3|fig4|fig5|fig6|all]
//
// Artefacts (CSV series and PGM heatmaps) are written into -out. The
// default scale reproduces the paper's shapes in minutes; -full uses the
// paper's 576 cores and full-size instances (slow).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hyperpraw/internal/experiments"
	"hyperpraw/internal/heatmap"
)

func main() {
	opts := experiments.Default()
	full := flag.Bool("full", false, "paper scale: 576 cores, full-size instances (slow)")
	flag.Float64Var(&opts.Scale, "scale", opts.Scale, "hypergraph scale factor (1.0 = paper size)")
	flag.IntVar(&opts.Cores, "cores", opts.Cores, "simulated compute units (= partitions)")
	flag.Uint64Var(&opts.Seed, "seed", opts.Seed, "master random seed")
	flag.StringVar(&opts.OutDir, "out", opts.OutDir, "output directory for artefacts")
	flag.IntVar(&opts.MaxIterations, "iters", opts.MaxIterations, "HyperPRAW restreaming iteration cap")
	flag.Float64Var(&opts.ImbalanceTolerance, "tol", opts.ImbalanceTolerance, "imbalance tolerance (max/mean)")
	flag.Parse()

	if *full {
		opts.Scale = 1.0
		opts.Cores = 576
	}

	what := "all"
	if flag.NArg() > 0 {
		what = flag.Arg(0)
	}

	runner, err := experiments.NewRunner(opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("machine: archer-like, %d cores, seed %d; instances at scale %g\n",
		opts.Cores, opts.Seed, opts.Scale)

	run := map[string]func(*experiments.Runner) error{
		"table1":    runTable1,
		"fig1":      runFig1,
		"fig3":      runFig3,
		"fig4":      runFig4,
		"fig5":      runFig5,
		"fig6":      runFig6,
		"ablations": runAblations,
		"scaling":   runScaling,
	}
	if what == "all" {
		for _, name := range []string{"table1", "fig1", "fig3", "fig4", "fig5", "fig6", "ablations", "scaling"} {
			if err := run[name](runner); err != nil {
				fatal(fmt.Errorf("%s: %w", name, err))
			}
		}
		return
	}
	fn, ok := run[what]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want table1|fig1|fig3|fig4|fig5|fig6|ablations|scaling|all)", what))
	}
	if err := fn(runner); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}

func runTable1(r *experiments.Runner) error {
	rows, err := r.WriteTable1()
	if err != nil {
		return err
	}
	fmt.Println("\n== Table 1: hypergraphs used in this work (paper -> generated) ==")
	fmt.Printf("%-34s %10s %10s %10s %8s %6s\n", "hypergraph", "vertices", "hyperedges", "NNZ", "avgCard", "E/V")
	for _, row := range rows {
		fmt.Printf("%-34s %10d %10d %10d %8.2f %6.2f\n",
			row.Name, row.Stats.Vertices, row.Stats.Hyperedges, row.Stats.TotalNNZ,
			row.Stats.AvgCardinality, row.Stats.EdgeVertexRate)
	}
	fmt.Println("wrote", r.Opts.OutDir+"/table1.csv")
	return nil
}

func runFig1(r *experiments.Runner) error {
	res, err := r.WriteFig1()
	if err != nil {
		return err
	}
	fmt.Println("\n== Fig 1A: p2p bandwidth (log scale) ==")
	fmt.Print(heatmap.ASCII(res.Bandwidth, 32, heatmap.Options{Log: true}))
	fmt.Println("== Fig 1B: benchmark traffic under naive placement (log scale) ==")
	fmt.Print(heatmap.ASCII(res.Traffic, 32, heatmap.Options{Log: true}))
	fmt.Println("wrote fig1a_bandwidth.{csv,pgm}, fig1b_traffic.{csv,pgm} in", r.Opts.OutDir)
	return nil
}

func runFig3(r *experiments.Runner) error {
	series, err := r.WriteFig3()
	if err != nil {
		return err
	}
	fmt.Println("\n== Fig 3: refinement-phase histories (final PC per strategy) ==")
	byInstance := map[string][]string{}
	finals := map[string]map[string]float64{}
	iters := map[string]map[string]int{}
	for _, s := range series {
		if finals[s.Instance] == nil {
			finals[s.Instance] = map[string]float64{}
			iters[s.Instance] = map[string]int{}
		}
		finals[s.Instance][s.Strategy] = s.FinalCommCost
		iters[s.Instance][s.Strategy] = s.Iterations
		byInstance[s.Instance] = append(byInstance[s.Instance], s.Strategy)
	}
	for _, inst := range experiments.Fig3Instances {
		fmt.Printf("%-26s", inst)
		for _, strat := range []string{"no-refinement", "refinement-1.0", "refinement-0.95"} {
			fmt.Printf("  %s: PC=%.4g (%d iters)", strat, finals[inst][strat], iters[inst][strat])
		}
		fmt.Println()
	}
	fmt.Println("wrote", r.Opts.OutDir+"/fig3_history.csv")
	return nil
}

func runFig4(r *experiments.Runner) error {
	rows, err := r.WriteFig4()
	if err != nil {
		return err
	}
	fmt.Println("\n== Fig 4: partition quality (cut / SOED / PC under physical costs) ==")
	fmt.Printf("%-34s %-20s %10s %12s %14s %7s\n", "hypergraph", "algorithm", "cut", "SOED", "commCost", "imbal")
	for _, row := range rows {
		fmt.Printf("%-34s %-20s %10d %12d %14.4g %7.3f\n",
			row.Hypergraph, row.Algorithm, row.HyperedgeCut, row.SOED, row.CommCost, row.Imbalance)
	}
	fmt.Println("wrote", r.Opts.OutDir+"/fig4_quality.csv")
	return nil
}

func runFig5(r *experiments.Runner) error {
	res, err := r.WriteFig5()
	if err != nil {
		return err
	}
	fmt.Println("\n== Fig 5: synthetic benchmark runtime (mean over 3 jobs x 2 iterations) ==")
	fmt.Printf("%-34s %-20s %14s %10s\n", "hypergraph", "algorithm", "runtime(s)", "speedup")
	sorted := append([]experiments.Fig5Summary(nil), res.Summaries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Hypergraph != sorted[j].Hypergraph {
			return sorted[i].Hypergraph < sorted[j].Hypergraph
		}
		return sorted[i].Algorithm < sorted[j].Algorithm
	})
	for _, s := range sorted {
		fmt.Printf("%-34s %-20s %14.6g %9.2fx\n", s.Hypergraph, s.Algorithm, s.MeanRuntime, s.SpeedupVsZoltan)
	}
	fmt.Println("wrote fig5_runtime.csv and fig5_speedup.csv in", r.Opts.OutDir)
	return nil
}

func runAblations(r *experiments.Runner) error {
	mapRows, err := r.WriteMappingAblation()
	if err != nil {
		return err
	}
	fmt.Println("\n== Ablation: aware streaming vs post-hoc topology mapping ==")
	fmt.Printf("%-30s %-20s %14s %14s\n", "hypergraph", "algorithm", "commCost", "runtime(s)")
	for _, row := range mapRows {
		fmt.Printf("%-30s %-20s %14.4g %14.6g\n", row.Hypergraph, row.Algorithm, row.CommCost, row.RuntimeSec)
	}

	timing, err := r.WriteTimingAblation()
	if err != nil {
		return err
	}
	fmt.Println("\n== Ablation: partitioning wall time ==")
	fmt.Printf("%-34s %-20s %12s\n", "hypergraph", "algorithm", "seconds")
	for _, row := range timing {
		fmt.Printf("%-34s %-20s %12.4g\n", row.Hypergraph, row.Algorithm, row.WallSeconds)
	}

	sweep, err := r.WriteRefinementSweep()
	if err != nil {
		return err
	}
	fmt.Println("\n== Ablation: refinement factor sweep (2cubes_sphere) ==")
	fmt.Printf("%8s %14s %12s %10s\n", "factor", "commCost", "iterations", "imbalance")
	for _, row := range sweep {
		fmt.Printf("%8.2f %14.4g %12d %10.3f\n", row.Factor, row.CommCost, row.Iterations, row.Imbalance)
	}
	fmt.Println("wrote ablation_mapping.csv, ablation_timing.csv, ablation_refinement.csv in", r.Opts.OutDir)
	return nil
}

func runScaling(r *experiments.Runner) error {
	rows, err := r.WriteScalingSweep()
	if err != nil {
		return err
	}
	fmt.Println("\n== Scaling sweep: aware advantage vs machine size (2cubes_sphere) ==")
	fmt.Printf("%8s %14s %14s %14s %12s %12s\n", "cores", "zoltan(s)", "basic(s)", "aware(s)", "vs zoltan", "vs basic")
	for _, row := range rows {
		fmt.Printf("%8d %14.6g %14.6g %14.6g %11.2fx %11.2fx\n",
			row.Cores, row.ZoltanRuntime, row.BasicRuntime, row.AwareRuntime,
			row.SpeedupVsZoltan, row.SpeedupVsBasic)
	}
	fmt.Println("wrote", r.Opts.OutDir+"/scaling_sweep.csv")
	return nil
}

func runFig6(r *experiments.Runner) error {
	res, err := r.WriteFig6()
	if err != nil {
		return err
	}
	fmt.Println("\n== Fig 6: traffic patterns vs bandwidth (cost paid per byte) ==")
	for _, algo := range experiments.Fig4Algorithms {
		cost := experiments.MeanCostPerByte(res.Traffic[algo], r.PhysCost)
		fmt.Printf("%-20s mean cost/byte = %.4f\n", algo, cost)
	}
	fmt.Println("wrote fig6[a-d]_*.{csv,pgm} in", r.Opts.OutDir)
	return nil
}
