// Command hpsim runs the paper's synthetic null-compute communication
// benchmark (§5.3) for a hypergraph under one or more partitioners on a
// simulated machine, reporting the simulated runtimes side by side.
//
// Usage:
//
//	hpsim -name sparsine -scale 0.01 -cores 64          # catalog instance
//	hpsim -cores 64 input.hgr                           # file input
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperpraw"
)

func main() {
	name := flag.String("name", "", "catalog instance to generate (alternative to a file argument)")
	scale := flag.Float64("scale", 0.01, "scale factor for the catalog instance")
	cores := flag.Int("cores", 64, "simulated compute units (= partitions)")
	seed := flag.Uint64("seed", 1, "random seed")
	steps := flag.Int("steps", 10, "benchmark time steps")
	msgBytes := flag.Int64("msg", 4096, "bytes per pairwise message")
	machineKind := flag.String("machine", "archer", "machine model: archer | cloud")
	flag.Parse()

	var h *hyperpraw.Hypergraph
	var err error
	switch {
	case *name != "":
		h = hyperpraw.GenerateInstance(*name, *scale, *seed)
	case flag.NArg() == 1:
		h, err = hyperpraw.LoadHypergraph(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: hpsim [-name instance | input.hgr] [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	var machine *hyperpraw.Machine
	switch *machineKind {
	case "archer":
		machine = hyperpraw.NewArcherMachine(*cores, *seed)
	case "cloud":
		machine = hyperpraw.NewCloudMachine(*cores, *seed)
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineKind))
	}
	env := hyperpraw.Profile(machine)
	bopts := &hyperpraw.BenchOptions{MessageBytes: *msgBytes, Steps: *steps}

	s := h.ComputeStats()
	fmt.Printf("%s: %d vertices, %d hyperedges, %d pins on %d cores (%s)\n",
		h.Name(), s.Vertices, s.Hyperedges, s.TotalNNZ, *cores, *machineKind)
	fmt.Printf("%-20s %12s %12s %14s %14s %8s\n",
		"algorithm", "cut", "SOED", "commCost", "runtime(s)", "speedup")

	type algoRun struct {
		label string
		parts func() ([]int32, error)
	}
	runs := []algoRun{
		{"zoltan-multilevel", func() ([]int32, error) {
			return hyperpraw.PartitionMultilevel(h, *cores, &hyperpraw.Options{Seed: *seed})
		}},
		{"hierarchical", func() ([]int32, error) {
			return hyperpraw.PartitionHierarchical(h, machine, &hyperpraw.Options{Seed: *seed})
		}},
		{"hyperpraw-basic", func() ([]int32, error) {
			p, _, err := hyperpraw.PartitionBasic(h, env, nil)
			return p, err
		}},
		{"hyperpraw-aware", func() ([]int32, error) {
			p, _, err := hyperpraw.PartitionAware(h, env, nil)
			return p, err
		}},
	}

	baseline := 0.0
	for _, run := range runs {
		parts, err := run.parts()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", run.label, err))
		}
		rep := hyperpraw.Evaluate(h, parts, env)
		res, err := hyperpraw.SimulateBenchmark(machine, h, parts, bopts)
		if err != nil {
			fatal(err)
		}
		speedup := "-"
		if baseline == 0 {
			baseline = res.MakespanSec
		} else if res.MakespanSec > 0 {
			speedup = fmt.Sprintf("%.2fx", baseline/res.MakespanSec)
		}
		fmt.Printf("%-20s %12d %12d %14.4g %14.6g %8s\n",
			run.label, rep.HyperedgeCut, rep.SOED, rep.CommCost, res.MakespanSec, speedup)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hpsim:", err)
	os.Exit(1)
}
