// Command profiler runs the ring-based peer-to-peer bandwidth profiler (the
// mpiGraph analog of paper §4.2) on a simulated machine and emits the
// measured bandwidth matrix and the derived communication cost matrix.
//
// Usage:
//
//	profiler -cores 144 -machine archer -out results/
//	profiler -cores 64 -machine cloud -ascii
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hyperpraw/internal/heatmap"
	"hyperpraw/internal/profile"
	"hyperpraw/internal/topology"
)

func main() {
	cores := flag.Int("cores", 144, "number of simulated compute units")
	machineKind := flag.String("machine", "archer", "machine model: archer | cloud | uniform")
	seed := flag.Uint64("seed", 1, "random seed (noise, rank scattering)")
	msgKiB := flag.Int64("msg", 512, "probe message size in KiB")
	repeats := flag.Int("repeats", 3, "timed exchanges averaged per pair")
	noise := flag.Float64("noise", 0.03, "measurement noise sigma")
	outDir := flag.String("out", "", "write bandwidth.{csv,pgm} and cost.csv to this directory")
	ascii := flag.Bool("ascii", false, "print an ASCII heatmap of the measured bandwidth")
	flag.Parse()

	var spec topology.Spec
	switch *machineKind {
	case "archer":
		spec = topology.Archer()
	case "cloud":
		spec = topology.Cloud()
	case "uniform":
		spec = topology.Uniform(2000)
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineKind))
	}
	machine, err := topology.New(spec, *cores, *seed)
	if err != nil {
		fatal(err)
	}

	cfg := profile.Config{
		MessageBytes: *msgKiB << 10,
		Repeats:      *repeats,
		NoiseSigma:   *noise,
		Seed:         *seed,
	}
	bw := profile.RingProfile(machine, cfg)
	cost := profile.CostMatrix(bw)

	min, max := bw[0][1], bw[0][1]
	for i := 0; i < *cores; i++ {
		for j := 0; j < *cores; j++ {
			if i == j {
				continue
			}
			if bw[i][j] < min {
				min = bw[i][j]
			}
			if bw[i][j] > max {
				max = bw[i][j]
			}
		}
	}
	fmt.Printf("profiled %d cores on %s: bandwidth %.0f–%.0f MB/s (%.1fx spread)\n",
		*cores, spec.Name, min, max, max/min)

	if *ascii {
		fmt.Print(heatmap.ASCII(bw, 48, heatmap.Options{Log: true, Title: "measured p2p bandwidth, log scale"}))
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
		if err := heatmap.SaveCSV(filepath.Join(*outDir, "bandwidth.csv"), bw,
			heatmap.Options{Title: "p2p bandwidth MB/s"}); err != nil {
			fatal(err)
		}
		if err := heatmap.SavePGM(filepath.Join(*outDir, "bandwidth.pgm"), bw,
			heatmap.Options{Log: true, Title: "p2p bandwidth"}); err != nil {
			fatal(err)
		}
		if err := heatmap.SaveCSV(filepath.Join(*outDir, "cost.csv"), cost,
			heatmap.Options{Title: "normalised cost matrix C(i,j)"}); err != nil {
			fatal(err)
		}
		fmt.Println("wrote bandwidth.csv, bandwidth.pgm, cost.csv to", *outDir)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "profiler:", err)
	os.Exit(1)
}
