// Command metricslint checks Prometheus text exposition against the rules
// this repo's /metrics endpoints promise (see internal/telemetry/lint.go):
// every sample preceded by # HELP/# TYPE, counters named *_total, histogram
// buckets cumulative and ending in +Inf with _sum and _count present.
//
// Usage:
//
//	metricslint http://127.0.0.1:8081 [URL...]   lint live /metrics endpoints
//	metricslint -                                lint an exposition on stdin
//	metricslint -selfcheck                       lint a built-in registry (CI smoke)
//
// URLs may name the server base or the /metrics path itself. Exit status is
// non-zero when any exposition fails the lint.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"hyperpraw/internal/telemetry"
)

func main() {
	selfcheck := flag.Bool("selfcheck", false, "lint the exposition of a registry exercising every instrument kind")
	timeout := flag.Duration("timeout", 5*time.Second, "per-URL fetch deadline")
	flag.Parse()

	if *selfcheck {
		if errs := telemetry.LintExposition(strings.NewReader(selfExposition())); len(errs) != 0 {
			fail("selfcheck", errs)
		}
		fmt.Println("metricslint: selfcheck ok")
		return
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: metricslint [-selfcheck] URL|- [URL...]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	hc := &http.Client{Timeout: *timeout}
	ok := true
	for _, arg := range flag.Args() {
		body, err := fetch(hc, arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", arg, err)
			ok = false
			continue
		}
		if errs := telemetry.LintExposition(strings.NewReader(body)); len(errs) != 0 {
			fail(arg, errs)
		}
		fmt.Printf("metricslint: %s ok (%d lines)\n", arg, strings.Count(body, "\n"))
	}
	if !ok {
		os.Exit(1)
	}
}

func fetch(hc *http.Client, arg string) (string, error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	url := strings.TrimRight(arg, "/")
	if !strings.HasSuffix(url, "/metrics") {
		url += "/metrics"
	}
	resp, err := hc.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func fail(what string, errs []error) {
	for _, e := range errs {
		fmt.Fprintf(os.Stderr, "metricslint: %s: %v\n", what, e)
	}
	os.Exit(1)
}

// selfExposition renders a registry that exercises every instrument kind —
// the same families both serving tiers register — so the lint rules and the
// exposition writer cannot drift apart without CI noticing.
func selfExposition() string {
	reg := telemetry.NewRegistry()
	reg.Counter("self_jobs_total", "Plain counter.").Add(3)
	reg.Gauge("self_depth", "Plain gauge.").Set(2)
	reg.GaugeFunc("self_uptime_seconds", "Func gauge.", func() float64 { return 1.5 })
	reg.CounterFunc("self_ticks_total", "Func counter.", func() float64 { return 9 })
	h := reg.Histogram("self_latency_seconds", "Histogram.", telemetry.DefBuckets)
	h.Observe(0.004)
	h.Observe(2)
	reg.CounterVec("self_requests_total", "Labeled counter.", "method", "status").
		WithLabelValues("GET", "200").Inc()
	reg.GaugeVec("self_build_info", `Labeled gauge with "quotes" and \ in help.`, "version").
		WithLabelValues(`v1"\x`).Set(1)
	reg.HistogramVec("self_stage_seconds", "Labeled histogram.", nil, "stage").
		WithLabelValues("total").Observe(0.25)

	var b strings.Builder
	if err := reg.WriteExposition(&b); err != nil {
		fmt.Fprintf(os.Stderr, "metricslint: selfcheck exposition: %v\n", err)
		os.Exit(1)
	}
	return b.String()
}
