// Command hgen generates the synthetic Table 1 hypergraph instances (or any
// custom instance) and writes them in hMetis format — to a file, or
// streamed straight into a hyperpraw server as a chunked hypergraph
// resource upload (POST /v1/hypergraphs), never holding the whole
// document in memory.
//
// Usage:
//
//	hgen -list                                  # show the catalog
//	hgen -name sparsine -scale 0.01 -out s.hgr  # one catalog instance
//	hgen -kind random -v 1000 -e 2000 -card 8 -out r.hgr  # custom
//	hgen -name sparsine -stream http://localhost:8080     # upload, no file
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"hyperpraw/client"
	"hyperpraw/internal/hgen"
	"hyperpraw/internal/hypergraph"
)

func main() {
	list := flag.Bool("list", false, "list the Table 1 catalog and exit")
	name := flag.String("name", "", "catalog instance name (see -list)")
	scale := flag.Float64("scale", 1.0, "scale factor for catalog instances")
	kind := flag.String("kind", "", "custom instance family: geometric|random|powerlaw|sat-primal|sat-dual")
	vertices := flag.Int("v", 1000, "custom instance: vertex count")
	edges := flag.Int("e", 1000, "custom instance: hyperedge count")
	card := flag.Float64("card", 4, "custom instance: average cardinality")
	skew := flag.Float64("skew", 0, "custom instance: power-law skew (0 = family default)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", "", "output path (hMetis format); this or -stream required unless -list")
	stream := flag.String("stream", "", "hyperpraw server base URL: upload the generated graph as a chunked hypergraph resource instead of (or as well as) writing -out")
	partSize := flag.Int64("part-size", 0, "upload part size in bytes for -stream (0 = client default)")
	flag.Parse()

	if *list {
		fmt.Printf("%-34s %-12s %10s %10s %8s\n", "name", "family", "vertices", "hyperedges", "avgCard")
		for _, s := range hgen.Catalog() {
			fmt.Printf("%-34s %-12s %10d %10d %8.2f\n", s.Name, s.Kind, s.Vertices, s.Hyperedges, s.AvgCardinality)
		}
		return
	}
	if *out == "" && *stream == "" {
		fmt.Fprintln(os.Stderr, "hgen: -out or -stream is required")
		os.Exit(2)
	}

	var h *hypergraph.Hypergraph
	switch {
	case *name != "":
		spec, ok := hgen.SpecByName(*name)
		if !ok {
			fatal(fmt.Errorf("unknown catalog instance %q (see -list)", *name))
		}
		h = hgen.Generate(spec.Scaled(*scale), *seed)
	case *kind != "":
		k, err := parseKind(*kind)
		if err != nil {
			fatal(err)
		}
		spec := hgen.Spec{
			Name:           fmt.Sprintf("custom-%s-%d", *kind, *vertices),
			Kind:           k,
			Vertices:       *vertices,
			Hyperedges:     *edges,
			AvgCardinality: *card,
			Skew:           *skew,
		}
		h = hgen.Generate(spec, *seed)
	default:
		fatal(fmt.Errorf("pass -name (catalog) or -kind (custom)"))
	}

	if *out != "" {
		if err := hypergraph.SaveFile(*out, h); err != nil {
			fatal(err)
		}
		s := h.ComputeStats()
		fmt.Printf("wrote %s: %d vertices, %d hyperedges, %d pins (avg cardinality %.2f)\n",
			*out, s.Vertices, s.Hyperedges, s.TotalNNZ, s.AvgCardinality)
	}
	if *stream != "" {
		// The hMetis text flows generator -> pipe -> chunked PUTs: one
		// upload part is the only buffered state, so graphs far larger
		// than this process's memory stream through untouched.
		pr, pw := io.Pipe()
		go func() {
			pw.CloseWithError(hypergraph.WriteHMetis(pw, h))
		}()
		info, err := client.New(*stream, nil).UploadHypergraph(context.Background(), pr, h.Name(), *partSize)
		if err != nil {
			fatal(fmt.Errorf("streaming to %s: %w", *stream, err))
		}
		fmt.Printf("uploaded to %s: hypergraph %s (%d vertices, %d hyperedges, %d pins, %d arena bytes)\n",
			*stream, info.ID, info.Vertices, info.Edges, info.Pins, info.Bytes)
	}
}

func parseKind(s string) (hgen.Kind, error) {
	switch s {
	case "geometric":
		return hgen.KindGeometric, nil
	case "random":
		return hgen.KindRandom, nil
	case "powerlaw":
		return hgen.KindPowerLaw, nil
	case "sat-primal":
		return hgen.KindSATPrimal, nil
	case "sat-dual":
		return hgen.KindSATDual, nil
	default:
		return 0, fmt.Errorf("unknown kind %q", s)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgen:", err)
	os.Exit(1)
}
