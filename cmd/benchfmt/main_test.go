package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func bl(name string, ns float64) benchLine { return benchLine{Name: name, NsPerOp: ns} }

func TestFoldSpeedupsPairsAndSweeps(t *testing.T) {
	rep := report{
		Speedups: map[string]float64{},
		Benchmarks: []benchLine{
			bl("BenchmarkStream/exhaustive/p=256", 800),
			bl("BenchmarkStream/fast/p=256", 200),
			bl("BenchmarkParallelAwareHier2/w=1/p=256", 600),
			bl("BenchmarkParallelAwareHier2/w=2/p=256", 320),
			bl("BenchmarkParallelAwareHier2/w=4/p=256", 170),
			// A sweep with no w=1 baseline must contribute nothing.
			bl("BenchmarkParallelUniform/w=4/p=256", 100),
			// Non-sweep shapes are ignored.
			bl("BenchmarkRun", 50),
			bl("BenchmarkStream/fast", 10),
		},
	}
	foldSpeedups(&rep)
	if got := rep.Speedups["BenchmarkStream/p=256"]; math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("exhaustive/fast speedup = %v, want 4.0", got)
	}
	want := map[string]float64{
		"BenchmarkParallelAwareHier2/p=256/w=2": 600.0 / 320.0,
		"BenchmarkParallelAwareHier2/p=256/w=4": 600.0 / 170.0,
	}
	if len(rep.ParallelSpeedups) != len(want) {
		t.Fatalf("parallel speedups = %v, want exactly %v", rep.ParallelSpeedups, want)
	}
	for k, v := range want {
		if got := rep.ParallelSpeedups[k]; math.Abs(got-v) > 1e-12 {
			t.Fatalf("%s = %v, want %v", k, got, v)
		}
	}
}

func TestParseWorkers(t *testing.T) {
	cases := []struct {
		seg string
		w   int
		ok  bool
	}{
		{"w=1", 1, true},
		{"w=16", 16, true},
		{"w=0", 0, false},
		{"w=-2", 0, false},
		{"w=", 0, false},
		{"w=abc", 0, false},
		{"exhaustive", 0, false},
		{"p=256", 0, false},
	}
	for _, c := range cases {
		w, ok := parseWorkers(c.seg)
		if ok != c.ok || (ok && w != c.w) {
			t.Fatalf("parseWorkers(%q) = (%d,%v), want (%d,%v)", c.seg, w, ok, c.w, c.ok)
		}
	}
}

func writeBaseline(t *testing.T, rep report) string {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestCompareBaselineParallelGuard pins the new guard: a parallel_speedup
// point that collapses past the threshold against the baseline fails the
// compare, one within the threshold passes, and a missing point fails.
func TestCompareBaselineParallelGuard(t *testing.T) {
	base := report{
		Benchmarks:       []benchLine{bl("BenchmarkParallelUniform/w=1/p=256", 1)},
		Speedups:         map[string]float64{"BenchmarkStream/p=256": 4.0},
		ParallelSpeedups: map[string]float64{"BenchmarkParallelUniform/p=256/w=4": 3.0},
	}
	path := writeBaseline(t, base)
	sink := devNull(t)

	ok := report{
		Speedups:         map[string]float64{"BenchmarkStream/p=256": 4.0},
		ParallelSpeedups: map[string]float64{"BenchmarkParallelUniform/p=256/w=4": 2.5},
	}
	if err := compareBaseline(sink, path, ok, 1.5); err != nil {
		t.Fatalf("within-threshold parallel speedup rejected: %v", err)
	}

	collapsed := report{
		Speedups:         map[string]float64{"BenchmarkStream/p=256": 4.0},
		ParallelSpeedups: map[string]float64{"BenchmarkParallelUniform/p=256/w=4": 1.0},
	}
	err := compareBaseline(sink, path, collapsed, 1.5)
	if err == nil || !strings.Contains(err.Error(), "parallel speedup") {
		t.Fatalf("collapsed parallel speedup not flagged: %v", err)
	}

	missing := report{
		Speedups: map[string]float64{"BenchmarkStream/p=256": 4.0},
	}
	err = compareBaseline(sink, path, missing, 1.5)
	if err == nil || !strings.Contains(err.Error(), "missing from this run") {
		t.Fatalf("missing parallel curve not flagged: %v", err)
	}
}

// TestCompareBaselineAllocGuard keeps the existing allocation contract
// covered next to the new parallel guard: a baseline zero-alloc benchmark
// that starts allocating, or loses its alloc data, fails the compare.
func TestCompareBaselineAllocGuard(t *testing.T) {
	zero := int64(0)
	one := int64(1)
	base := report{
		Benchmarks: []benchLine{
			{Name: "BenchmarkParallelUniform/w=4/p=256", NsPerOp: 1, AllocsPerOp: &zero},
		},
		Speedups: map[string]float64{"BenchmarkStream/p=256": 4.0},
	}
	path := writeBaseline(t, base)
	sink := devNull(t)

	still := report{
		Benchmarks: []benchLine{
			{Name: "BenchmarkParallelUniform/w=4/p=256", NsPerOp: 1, AllocsPerOp: &zero},
		},
		Speedups: map[string]float64{"BenchmarkStream/p=256": 4.0},
	}
	if err := compareBaseline(sink, path, still, 1.5); err != nil {
		t.Fatalf("zero-alloc benchmark rejected: %v", err)
	}

	regressed := report{
		Benchmarks: []benchLine{
			{Name: "BenchmarkParallelUniform/w=4/p=256", NsPerOp: 1, AllocsPerOp: &one},
		},
		Speedups: map[string]float64{"BenchmarkStream/p=256": 4.0},
	}
	err := compareBaseline(sink, path, regressed, 1.5)
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("alloc regression not flagged: %v", err)
	}

	noData := report{
		Benchmarks: []benchLine{
			{Name: "BenchmarkParallelUniform/w=4/p=256", NsPerOp: 1},
		},
		Speedups: map[string]float64{"BenchmarkStream/p=256": 4.0},
	}
	err = compareBaseline(sink, path, noData, 1.5)
	if err == nil || !strings.Contains(err.Error(), "no alloc data") {
		t.Fatalf("missing alloc data not flagged: %v", err)
	}
}
