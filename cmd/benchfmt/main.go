// Command benchfmt converts `go test -bench` output on stdin into the
// machine-readable BENCH_core.json consumed by the benchmark trajectory
// (see README "Performance"): every benchmark line is recorded — with
// B/op and allocs/op when the bench ran under -benchmem — and for each
// BenchmarkStream* family the exhaustive/fast pairs at equal p are
// folded into a speedup ratio. Worker-swept families (sub-benchmarks
// named <family>/w=N/<variant>) are additionally folded into
// parallel_speedup curves: ns/op at w=1 divided by ns/op at each w=N.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkStream -benchtime 3x -benchmem ./internal/core/ | benchfmt -o BENCH_core.json
//
// With -compare BASELINE.json the new report is additionally checked
// against a committed baseline: the per-family exhaustive/fast speedup
// ratios must not have collapsed by more than -threshold (default 1.5),
// and any benchmark the baseline records at zero allocs/op must still
// allocate nothing. Speedups are within-run ratios and alloc counts are
// exact, so both checks are robust to the absolute timing noise of CI
// machines while still catching a fast-path revert — a reverted fast
// kernel drags its family's speedup to ~1x, which trips the threshold no
// matter how fast or slow the runner is.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

type benchLine struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are recorded when the bench ran with
	// -benchmem; nil otherwise. The kernel fast paths promise zero
	// allocs/op, so the compare guard treats a 0 → >0 transition in a
	// baseline family as a regression.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

type report struct {
	GeneratedAt string             `json:"generated_at"`
	Goos        string             `json:"goos,omitempty"`
	Goarch      string             `json:"goarch,omitempty"`
	CPU         string             `json:"cpu,omitempty"`
	Benchmarks  []benchLine        `json:"benchmarks"`
	Speedups    map[string]float64 `json:"speedups"`
	// ParallelSpeedups maps Benchmark<Family>/<variant>/w=N to the
	// within-run ratio ns/op(w=1) ÷ ns/op(w=N) for every worker-swept
	// family (sub-benchmark names of the form <family>/w=N/<variant>).
	// Like the exhaustive/fast speedups these are ratios of two timings
	// from the same process on the same instance, so they survive slow or
	// noisy runners; note that on a single-core runner they sit near 1.0
	// by construction.
	ParallelSpeedups map[string]float64 `json:"parallel_speedup,omitempty"`
}

var lineRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseWorkers recognises the "w=N" path segment of a worker-swept
// sub-benchmark name.
func parseWorkers(seg string) (int, bool) {
	rest, ok := strings.CutPrefix(seg, "w=")
	if !ok {
		return 0, false
	}
	w, err := strconv.Atoi(rest)
	if err != nil || w <= 0 {
		return 0, false
	}
	return w, true
}

func main() {
	out := flag.String("o", "BENCH_core.json", "output file (\"-\" for stdout)")
	compare := flag.String("compare", "", "baseline BENCH_core.json to guard speedups against (empty disables)")
	threshold := flag.Float64("threshold", 1.5, "max tolerated baseline/new speedup ratio before failing")
	flag.Parse()

	rep := report{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Speedups: map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		bl := benchLine{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			if bpo, err := strconv.ParseFloat(m[4], 64); err == nil {
				bl.BytesPerOp = &bpo
			}
		}
		if m[5] != "" {
			if apo, err := strconv.ParseInt(m[5], 10, 64); err == nil {
				bl.AllocsPerOp = &apo
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, bl)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt: no benchmark lines on stdin")
		os.Exit(1)
	}

	foldSpeedups(&rep)
	keys := sortedKeys(rep.Speedups)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: marshal: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		for _, k := range keys {
			if s, ok := rep.Speedups[k]; ok {
				fmt.Printf("%-40s %5.2fx\n", k, s)
			}
		}
		for _, k := range sortedKeys(rep.ParallelSpeedups) {
			fmt.Printf("%-40s %5.2fx (parallel)\n", k, rep.ParallelSpeedups[k])
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}

	if *compare != "" {
		// With -o - the JSON report owns stdout; route the comparison
		// table to stderr so the document stays parseable.
		logw := os.Stdout
		if *out == "-" {
			logw = os.Stderr
		}
		if err := compareBaseline(logw, *compare, rep, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "benchfmt: %v\n", err)
			os.Exit(1)
		}
	}
}

// foldSpeedups derives the two speedup views from the raw benchmark lines:
// exhaustive/fast pairs at equal variant become Speedups, and worker sweeps
// (<family>/w=N/<variant>) become ParallelSpeedups with the family's own
// w=1 timing as the serial-schedule baseline.
func foldSpeedups(rep *report) {
	// Pair Benchmark<Family>/exhaustive/<variant> with .../fast/<variant>.
	type pair struct{ exhaustive, fast float64 }
	pairs := map[string]*pair{}
	type sweep struct {
		serial float64
		multi  map[int]float64
	}
	sweeps := map[string]*sweep{}
	for _, b := range rep.Benchmarks {
		parts := strings.SplitN(b.Name, "/", 3)
		if len(parts) != 3 {
			continue
		}
		key := parts[0] + "/" + parts[2]
		if w, ok := parseWorkers(parts[1]); ok {
			s := sweeps[key]
			if s == nil {
				s = &sweep{multi: map[int]float64{}}
				sweeps[key] = s
			}
			if w == 1 {
				s.serial = b.NsPerOp
			} else {
				s.multi[w] = b.NsPerOp
			}
			continue
		}
		p := pairs[key]
		if p == nil {
			p = &pair{}
			pairs[key] = p
		}
		switch parts[1] {
		case "exhaustive":
			p.exhaustive = b.NsPerOp
		case "fast":
			p.fast = b.NsPerOp
		}
	}
	for k, p := range pairs {
		if p.exhaustive > 0 && p.fast > 0 {
			rep.Speedups[k] = p.exhaustive / p.fast
		}
	}
	for key, s := range sweeps {
		if s.serial <= 0 {
			continue
		}
		for w, ns := range s.multi {
			if ns > 0 {
				if rep.ParallelSpeedups == nil {
					rep.ParallelSpeedups = map[string]float64{}
				}
				rep.ParallelSpeedups[fmt.Sprintf("%s/w=%d", key, w)] = s.serial / ns
			}
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// compareBaseline fails when any speedup family present in the baseline is
// missing from the new report, or has collapsed by more than threshold
// (baseline/new > threshold). The same guard covers the parallel_speedup
// curves: a w=N point that collapses past the threshold against its
// committed baseline (a worker pool serialising on a lock would drag every
// multi-worker point toward the w=1 baseline) fails the run. It also guards
// the allocation contract: a benchmark that the baseline records at zero
// allocs/op must stay at zero (alloc counts, unlike timings, are
// machine-independent and exact). New families absent from the baseline
// pass: the guard rejects regressions, not additions.
func compareBaseline(logw *os.File, path string, rep report, threshold float64) error {
	if threshold <= 0 {
		return fmt.Errorf("threshold must be positive, got %g", threshold)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if len(base.Speedups) == 0 {
		return fmt.Errorf("baseline %s has no speedups to compare against", path)
	}

	keys := make([]string, 0, len(base.Speedups))
	for k := range base.Speedups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var regressions []string
	for _, k := range keys {
		baseS := base.Speedups[k]
		if baseS <= 0 {
			continue
		}
		newS, ok := rep.Speedups[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: present in baseline (%.2fx) but missing from this run", k, baseS))
			continue
		}
		ratio := baseS / newS
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: speedup %.2fx vs baseline %.2fx (ratio %.2f > %.2f)", k, newS, baseS, ratio, threshold))
		}
		fmt.Fprintf(logw, "compare %-40s base %5.2fx new %5.2fx  %s\n", k, baseS, newS, verdict)
	}
	for _, k := range sortedKeys(base.ParallelSpeedups) {
		baseS := base.ParallelSpeedups[k]
		if baseS <= 0 {
			continue
		}
		newS, ok := rep.ParallelSpeedups[k]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: parallel speedup in baseline (%.2fx) but missing from this run", k, baseS))
			continue
		}
		ratio := baseS / newS
		verdict := "ok"
		if ratio > threshold {
			verdict = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: parallel speedup %.2fx vs baseline %.2fx (ratio %.2f > %.2f)", k, newS, baseS, ratio, threshold))
		}
		fmt.Fprintf(logw, "compare %-40s base %5.2fx new %5.2fx  %s (parallel)\n", k, baseS, newS, verdict)
	}
	newAllocs := map[string]*int64{}
	for _, b := range rep.Benchmarks {
		newAllocs[b.Name] = b.AllocsPerOp
	}
	for _, b := range base.Benchmarks {
		if b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
			continue
		}
		a, ok := newAllocs[b.Name]
		switch {
		case !ok:
			// A missing benchmark is already reported by the speedup
			// comparison when its family is guarded; don't double up.
		case a == nil:
			// The guard must not silently lapse: if the baseline promises
			// zero allocs but this run carries no alloc data (the bench
			// ran without -benchmem, or the line stopped parsing), that
			// is a broken pipeline, not a pass.
			regressions = append(regressions,
				fmt.Sprintf("%s: baseline promises 0 allocs/op but this run has no alloc data (run with -benchmem)", b.Name))
		case *a > 0:
			regressions = append(regressions,
				fmt.Sprintf("%s: %d allocs/op (baseline promises zero)", b.Name, *a))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d speedup regression(s) beyond %.2fx against %s:\n  %s",
			len(regressions), threshold, path, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(logw, "compare: %d speedup families and %d parallel curves within %.2fx of %s\n",
		len(keys), len(base.ParallelSpeedups), threshold, path)
	return nil
}
