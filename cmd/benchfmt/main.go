// Command benchfmt converts `go test -bench` output on stdin into the
// machine-readable BENCH_core.json consumed by the benchmark trajectory
// (see README "Performance"): every benchmark line is recorded, and for
// each BenchmarkStream* family the exhaustive/fast pairs at equal p are
// folded into a speedup ratio.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkStream -benchtime 3x ./internal/core/ | benchfmt -o BENCH_core.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

type benchLine struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type report struct {
	GeneratedAt string             `json:"generated_at"`
	Goos        string             `json:"goos,omitempty"`
	Goarch      string             `json:"goarch,omitempty"`
	CPU         string             `json:"cpu,omitempty"`
	Benchmarks  []benchLine        `json:"benchmarks"`
	Speedups    map[string]float64 `json:"speedups"`
}

var lineRE = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

func main() {
	out := flag.String("o", "BENCH_core.json", "output file (\"-\" for stdout)")
	flag.Parse()

	rep := report{GeneratedAt: time.Now().UTC().Format(time.RFC3339), Speedups: map[string]float64{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := lineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, benchLine{Name: m[1], Iterations: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchfmt: no benchmark lines on stdin")
		os.Exit(1)
	}

	// Pair Benchmark<Family>/exhaustive/<variant> with .../fast/<variant>.
	type pair struct{ exhaustive, fast float64 }
	pairs := map[string]*pair{}
	for _, b := range rep.Benchmarks {
		parts := strings.SplitN(b.Name, "/", 3)
		if len(parts) != 3 {
			continue
		}
		key := parts[0] + "/" + parts[2]
		p := pairs[key]
		if p == nil {
			p = &pair{}
			pairs[key] = p
		}
		switch parts[1] {
		case "exhaustive":
			p.exhaustive = b.NsPerOp
		case "fast":
			p.fast = b.NsPerOp
		}
	}
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := pairs[k]
		if p.exhaustive > 0 && p.fast > 0 {
			rep.Speedups[k] = p.exhaustive / p.fast
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: marshal: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchfmt: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	for _, k := range keys {
		if s, ok := rep.Speedups[k]; ok {
			fmt.Printf("%-40s %5.2fx\n", k, s)
		}
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
}
