package hyperpraw

import (
	"path/filepath"
	"testing"
)

func testEnv(t *testing.T) (*Machine, Environment) {
	t.Helper()
	m := NewArcherMachine(16, 1)
	return m, Profile(m)
}

func TestProfileShapes(t *testing.T) {
	m, env := testEnv(t)
	p := m.NumCores()
	if len(env.Bandwidth) != p || len(env.PhysCost) != p || len(env.UniformCost) != p {
		t.Fatal("environment matrices sized wrong")
	}
	for i := 0; i < p; i++ {
		if env.PhysCost[i][i] != 0 || env.UniformCost[i][i] != 0 {
			t.Fatal("cost diagonals must be zero")
		}
	}
}

func TestGenerateInstanceAndNames(t *testing.T) {
	names := InstanceNames()
	if len(names) != 10 {
		t.Fatalf("%d instance names", len(names))
	}
	h := GenerateInstance(names[0], 0.005, 1)
	if h.NumVertices() == 0 {
		t.Fatal("empty instance")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown instance did not panic")
		}
	}()
	GenerateInstance("bogus", 1, 1)
}

func TestEndToEndAware(t *testing.T) {
	m, env := testEnv(t)
	h := GenerateInstance("ABACUS_shell_hd", 0.01, 1)
	parts, res, err := PartitionAware(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != h.NumVertices() {
		t.Fatal("partition length mismatch")
	}
	if res.Iterations < 1 {
		t.Fatal("no iterations recorded")
	}
	report := Evaluate(h, parts, env)
	if report.CommCost < 0 || report.Imbalance < 1 {
		t.Fatalf("bad report %+v", report)
	}
	bres, err := SimulateBenchmark(m, h, parts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bres.MakespanSec <= 0 {
		t.Fatal("benchmark simulated nothing")
	}
}

func TestAwareBeatsBasicOnPhysicalCost(t *testing.T) {
	_, env := testEnv(t)
	h := GenerateInstance("2cubes_sphere", 0.01, 2)
	aware, _, err := PartitionAware(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	basic, _, err := PartitionBasic(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Evaluate(h, aware, env).CommCost >= Evaluate(h, basic, env).CommCost {
		t.Fatal("aware did not beat basic under physical cost")
	}
}

func TestMultilevelFacade(t *testing.T) {
	_, env := testEnv(t)
	h := GenerateInstance("sparsine", 0.005, 3)
	parts, err := PartitionMultilevel(h, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(h, parts, env)
	if rep.Imbalance > 1.35 {
		t.Fatalf("multilevel imbalance %g", rep.Imbalance)
	}
}

func TestOptionsPlumbing(t *testing.T) {
	_, env := testEnv(t)
	h := GenerateInstance("ABACUS_shell_hd", 0.005, 4)
	opts := &Options{MaxIterations: 5, RecordHistory: true, DisableRefinement: true}
	_, res, err := PartitionAware(h, env, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 5 {
		t.Fatalf("iterations %d exceed cap", res.Iterations)
	}
	if len(res.History) != res.Iterations {
		t.Fatal("history not recorded")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	h := GenerateInstance("webbase-1M", 0.001, 5)
	path := filepath.Join(t.TempDir(), "wb.hgr")
	if err := SaveHypergraph(path, h); err != nil {
		t.Fatal(err)
	}
	h2, err := LoadHypergraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if h2.NumVertices() != h.NumVertices() || h2.NumPins() != h.NumPins() {
		t.Fatal("round trip lost structure")
	}
}

func TestTrafficMatrix(t *testing.T) {
	m, env := testEnv(t)
	h := GenerateInstance("sparsine", 0.005, 6)
	parts, _, err := PartitionBasic(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	traffic, err := TrafficMatrix(m, h, parts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(traffic) != m.NumCores() {
		t.Fatal("traffic matrix sized wrong")
	}
	total := 0.0
	for i := range traffic {
		if traffic[i][i] != 0 {
			t.Fatal("self traffic recorded")
		}
		for _, v := range traffic[i] {
			total += v
		}
	}
	if total == 0 {
		t.Fatal("no traffic at all")
	}
}

func TestCloudMachine(t *testing.T) {
	m := NewCloudMachine(32, 7)
	if m.NumCores() != 32 {
		t.Fatal("core count wrong")
	}
	env := Profile(m)
	if len(env.PhysCost) != 32 {
		t.Fatal("profile dimension wrong")
	}
}

func TestAwareDiscoversCloudLocality(t *testing.T) {
	// On a scattered-rank cloud machine only profiling reveals which rank
	// pairs share a host; the aware variant must turn that into lower
	// physical communication cost than the oblivious variant.
	m := NewCloudMachine(32, 3)
	env := Profile(m)
	h := GenerateInstance("ABACUS_shell_hd", 0.03, 3)
	aware, _, err := PartitionAware(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	basic, _, err := PartitionBasic(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	awarePC := Evaluate(h, aware, env).CommCost
	basicPC := Evaluate(h, basic, env).CommCost
	if awarePC >= basicPC {
		t.Fatalf("aware PC %g not below basic PC %g on the cloud machine", awarePC, basicPC)
	}
}

func TestEvaluateConsistentAcrossCalls(t *testing.T) {
	_, env := testEnv(t)
	h := GenerateInstance("sparsine", 0.003, 8)
	parts, _, err := PartitionBasic(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := Evaluate(h, parts, env)
	b := Evaluate(h, parts, env)
	if a != b {
		t.Fatal("Evaluate is not a pure function of its inputs")
	}
}

func TestBenchOptionsPlumbing(t *testing.T) {
	m, env := testEnv(t)
	h := GenerateInstance("ABACUS_shell_hd", 0.01, 9)
	parts, _, err := PartitionBasic(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	one, err := SimulateBenchmark(m, h, parts, &BenchOptions{Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := SimulateBenchmark(m, h, parts, &BenchOptions{Steps: 10})
	if err != nil {
		t.Fatal(err)
	}
	if ten.TotalBytes != 10*one.TotalBytes {
		t.Fatalf("steps option ignored: %d vs %d bytes", ten.TotalBytes, one.TotalBytes)
	}
}
