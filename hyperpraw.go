// Package hyperpraw is the public API of the HyperPRAW reproduction: an
// architecture-aware restreaming hypergraph partitioner (Fernandez Musoles,
// Coca, Richmond — ICPP 2019) together with every substrate the paper's
// evaluation needs: a Zoltan-style multilevel baseline, a simulated
// hierarchical HPC machine with bandwidth profiling, quality metrics and the
// synthetic communication benchmark.
//
// # Quickstart
//
//	machine := hyperpraw.NewArcherMachine(64, 1)
//	env := hyperpraw.Profile(machine)          // p2p bandwidth → cost matrix
//	h := hyperpraw.GenerateInstance("sparsine", 0.01, 1)
//	parts, res, _ := hyperpraw.PartitionAware(h, env, nil)
//	report := hyperpraw.Evaluate(h, parts, env)
//	runtime, _ := hyperpraw.SimulateBenchmark(machine, h, parts, nil)
//
// The internal packages remain importable by this module's commands and
// examples; external users interact through this facade.
package hyperpraw

import (
	"fmt"

	"hyperpraw/internal/bench"
	"hyperpraw/internal/core"
	"hyperpraw/internal/hgen"
	"hyperpraw/internal/hypergraph"
	"hyperpraw/internal/metrics"
	"hyperpraw/internal/multilevel"
	"hyperpraw/internal/netsim"
	"hyperpraw/internal/profile"
	"hyperpraw/internal/topology"
)

// Hypergraph re-exports the immutable hypergraph type.
type Hypergraph = hypergraph.Hypergraph

// Machine re-exports the simulated HPC machine.
type Machine = topology.Machine

// QualityReport re-exports the quality metrics bundle.
type QualityReport = metrics.QualityReport

// PartitionResult re-exports HyperPRAW's run result (iteration history,
// stopping reason, final metrics).
type PartitionResult = core.Result

// IterationStats re-exports the per-iteration statistics recorded in
// PartitionResult.History and delivered live through Options.Progress.
type IterationStats = core.IterationStats

// KernelStats re-exports the streaming kernel's activity counters (scan
// strategy mix, pruning effectiveness, frontier sizes). Attach a sink via
// Options.KernelStats; collection never changes move decisions.
type KernelStats = core.StreamStats

// StopReason re-exports the kernel's termination reason found in
// PartitionResult.Stopped.
type StopReason = core.StopReason

// StoppedCanceled re-exports the cancellation stop reason: the Options.Stop
// hook ended the run early (deadline or shutdown).
const StoppedCanceled = core.StoppedCanceled

// BenchResult re-exports the simulated benchmark outcome.
type BenchResult = netsim.Result

// Environment bundles a machine's profiled bandwidth and the two cost
// matrices the algorithms consume.
type Environment struct {
	// Bandwidth is the profiled peer-to-peer bandwidth matrix in MB/s.
	Bandwidth [][]float64
	// PhysCost is the paper's normalised cost matrix C(i,j) ∈ [1,2].
	PhysCost [][]float64
	// UniformCost is the architecture-oblivious matrix (1 off-diagonal).
	UniformCost [][]float64

	// physIndex/uniformIndex are the cost-tier indexes of the two
	// matrices (structure detection, block floors, walk orders — see
	// core.BuildCostIndex). Profile builds them eagerly so every copy of
	// a cached Environment shares one index and repeat partitioning jobs
	// skip the O(p² log p) analysis; hand-assembled Environments leave
	// them nil and core.New builds per run.
	physIndex    *core.CostIndex
	uniformIndex *core.CostIndex
}

// NewArcherMachine builds an ARCHER-like hierarchical machine with the given
// number of cores; noise is deterministic in seed.
func NewArcherMachine(cores int, seed uint64) *Machine {
	return topology.MustNew(topology.Archer(), cores, seed)
}

// NewCloudMachine builds an opaque cloud-like machine with scattered ranks,
// the scenario where profiling-based discovery is essential.
func NewCloudMachine(cores int, seed uint64) *Machine {
	return topology.MustNew(topology.Cloud(), cores, seed)
}

// Profile measures the machine's peer-to-peer bandwidth with the ring
// profiler (the mpiGraph analog of §4.2), derives both cost matrices, and
// builds their cost-tier indexes so every partitioning run against this
// Environment starts from the precomputed structure.
func Profile(m *Machine) Environment {
	bw := profile.RingProfile(m, profile.DefaultConfig())
	env := Environment{
		Bandwidth:   bw,
		PhysCost:    profile.CostMatrix(bw),
		UniformCost: profile.UniformCost(m.NumCores()),
	}
	env.physIndex = core.BuildCostIndex(env.PhysCost)
	env.uniformIndex = core.BuildCostIndex(env.UniformCost)
	return env
}

// LoadHypergraph reads a hypergraph from disk (hMetis .hgr or MatrixMarket
// .mtx, selected by extension).
func LoadHypergraph(path string) (*Hypergraph, error) {
	return hypergraph.LoadFile(path)
}

// SaveHypergraph writes h to path in hMetis format.
func SaveHypergraph(path string, h *Hypergraph) error {
	return hypergraph.SaveFile(path, h)
}

// GenerateInstance synthesises one of the paper's Table 1 instances at the
// given scale (1.0 = paper size). It panics on unknown names; use
// InstanceNames for the valid set.
func GenerateInstance(name string, scale float64, seed uint64) *Hypergraph {
	spec, ok := hgen.SpecByName(name)
	if !ok {
		panic(fmt.Sprintf("hyperpraw: unknown instance %q", name))
	}
	return hgen.Generate(spec.Scaled(scale), seed)
}

// InstanceNames lists the Table 1 instance names in the paper's order.
func InstanceNames() []string {
	specs := hgen.Catalog()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// Options tunes the partitioners; the zero value (or nil pointer) uses the
// paper's defaults.
type Options struct {
	// ImbalanceTolerance is the acceptable max/mean load ratio (default 1.10).
	ImbalanceTolerance float64
	// MaxIterations caps HyperPRAW's restreaming (default 100).
	MaxIterations int
	// RefinementFactor is the α update during refinement (default 0.95).
	RefinementFactor float64
	// DisableRefinement stops restreaming at the imbalance tolerance, as
	// GRaSP does (the paper's "no refinement" baseline).
	DisableRefinement bool
	// RecordHistory retains per-iteration statistics in PartitionResult.
	RecordHistory bool
	// FrontierRestreaming makes HyperPRAW's refinement phase stream only the
	// moved-vertex frontier (with periodic corrective full sweeps) instead
	// of every vertex every pass. Off by default — the paper's exact
	// semantics; turning it on trades bit-identical iteration histories for
	// much cheaper refinement at equivalent final quality.
	FrontierRestreaming bool
	// Progress, when non-nil, is called synchronously after each restreaming
	// iteration with that iteration's statistics (the live counterpart of
	// RecordHistory). Only the restreaming algorithms report progress; the
	// multilevel and hierarchical baselines ignore it.
	Progress func(IterationStats)
	// Stop, when non-nil, is polled between restreaming iterations;
	// returning true ends the run early (StoppedCanceled) with the best
	// partition found so far. The serving layer wires a context deadline
	// here so a job over budget frees its worker slot within one pass.
	// Only the restreaming algorithms honor it.
	Stop func() bool
	// Seed drives the multilevel baseline's randomness (default 1).
	Seed uint64
	// KernelStats, when non-nil, accumulates the run's kernel activity
	// counters (Add semantics). Only the restreaming algorithms report
	// them; the multilevel baseline ignores the sink.
	KernelStats *KernelStats
}

func (o *Options) orDefault() Options {
	out := Options{ImbalanceTolerance: 1.10, MaxIterations: 100, RefinementFactor: 0.95, Seed: 1}
	if o == nil {
		return out
	}
	if o.ImbalanceTolerance > 1 {
		out.ImbalanceTolerance = o.ImbalanceTolerance
	}
	if o.MaxIterations > 0 {
		out.MaxIterations = o.MaxIterations
	}
	if o.RefinementFactor > 0 {
		out.RefinementFactor = o.RefinementFactor
	}
	out.DisableRefinement = o.DisableRefinement
	out.RecordHistory = o.RecordHistory
	out.FrontierRestreaming = o.FrontierRestreaming
	out.Progress = o.Progress
	out.Stop = o.Stop
	out.KernelStats = o.KernelStats
	if o.Seed != 0 {
		out.Seed = o.Seed
	}
	return out
}

func prawConfig(cost [][]float64, idx *core.CostIndex, o Options) core.Config {
	cfg := core.DefaultConfig(cost)
	cfg.Index = idx
	cfg.ImbalanceTolerance = o.ImbalanceTolerance
	cfg.MaxIterations = o.MaxIterations
	cfg.RefinementFactor = o.RefinementFactor
	if o.DisableRefinement {
		cfg.RefinementPolicy = core.StopAtTolerance
	}
	cfg.RecordHistory = o.RecordHistory
	cfg.FrontierRestreaming = o.FrontierRestreaming
	cfg.Progress = o.Progress
	cfg.Stop = o.Stop
	cfg.Stats = o.KernelStats
	return cfg
}

// PartitionAware runs HyperPRAW with the profiled physical cost matrix
// (HyperPRAW-aware). The partition has len(env.PhysCost) parts.
func PartitionAware(h *Hypergraph, env Environment, opts *Options) ([]int32, PartitionResult, error) {
	o := opts.orDefault()
	pr, err := core.New(h, prawConfig(env.PhysCost, env.physIndex, o))
	if err != nil {
		return nil, PartitionResult{}, err
	}
	defer pr.Release()
	res := pr.Run()
	return res.Parts, res, nil
}

// PartitionBasic runs HyperPRAW with the uniform cost matrix
// (HyperPRAW-basic).
func PartitionBasic(h *Hypergraph, env Environment, opts *Options) ([]int32, PartitionResult, error) {
	o := opts.orDefault()
	pr, err := core.New(h, prawConfig(env.UniformCost, env.uniformIndex, o))
	if err != nil {
		return nil, PartitionResult{}, err
	}
	defer pr.Release()
	res := pr.Run()
	return res.Parts, res, nil
}

// PartitionMultilevel runs the Zoltan-style multilevel recursive-bisection
// baseline into k parts.
func PartitionMultilevel(h *Hypergraph, k int, opts *Options) ([]int32, error) {
	o := opts.orDefault()
	cfg := multilevel.DefaultConfig(k)
	cfg.ImbalanceTolerance = o.ImbalanceTolerance
	cfg.Seed = o.Seed
	return multilevel.Partition(h, cfg)
}

// Evaluate computes the paper's quality metrics (hyperedge cut, SOED,
// partitioning communication cost under the physical matrix, imbalance).
func Evaluate(h *Hypergraph, parts []int32, env Environment) QualityReport {
	return metrics.Evaluate(h, parts, env.PhysCost)
}

// BenchOptions tunes the synthetic benchmark; nil uses the defaults
// (1 KiB messages, 10 steps, 50% send/receive overlap).
type BenchOptions struct {
	MessageBytes int64
	Steps        int
	Overlap      float64
}

// SimulateBenchmark runs the paper's null-compute communication benchmark
// (§5.3) for the partitioned hypergraph on the machine, returning the
// simulated result (MakespanSec is the headline runtime of Fig 5).
func SimulateBenchmark(m *Machine, h *Hypergraph, parts []int32, opts *BenchOptions) (BenchResult, error) {
	cfg := bench.DefaultConfig()
	if opts != nil {
		if opts.MessageBytes > 0 {
			cfg.MessageBytes = opts.MessageBytes
		}
		if opts.Steps > 0 {
			cfg.Steps = opts.Steps
		}
		if opts.Overlap > 0 {
			cfg.Overlap = opts.Overlap
		}
	}
	return bench.Run(m, h, parts, cfg)
}

// TrafficMatrix returns the benchmark's per-rank bytes-sent matrix for the
// partitioned hypergraph — the quantity plotted in Fig 1B and Fig 6B–D.
func TrafficMatrix(m *Machine, h *Hypergraph, parts []int32, opts *BenchOptions) ([][]float64, error) {
	cfg := bench.DefaultConfig()
	if opts != nil {
		if opts.MessageBytes > 0 {
			cfg.MessageBytes = opts.MessageBytes
		}
		if opts.Steps > 0 {
			cfg.Steps = opts.Steps
		}
	}
	traffic, err := bench.BuildTraffic(h, parts, m.NumCores(), cfg)
	if err != nil {
		return nil, err
	}
	return traffic.BytesMatrix(), nil
}
