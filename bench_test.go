// Benchmarks regenerating every table and figure of the paper's evaluation.
//
// Each benchmark runs the corresponding experiment end to end at a reduced
// scale (so `go test -bench=.` completes in minutes) and reports, next to
// the usual ns/op, custom metrics carrying the experiment's headline
// numbers — e.g. BenchmarkFig5Runtime reports the geometric-mean speedup of
// HyperPRAW-aware over the Zoltan-style baseline, the paper's key result.
//
// To regenerate the CSV artefacts (paper-shaped data files) use
// cmd/experiments instead; these benchmarks exercise identical code paths.
package hyperpraw

import (
	"testing"

	"hyperpraw/internal/experiments"
	"hyperpraw/internal/stats"
)

// benchOptions is the scale used by all table/figure benchmarks.
func benchOptions(outDir string) experiments.Options {
	o := experiments.Default()
	o.Scale = 0.003
	o.Cores = 32
	o.MaxIterations = 50
	o.Steps = 5
	o.OutDir = outDir
	return o
}

func newBenchRunner(b *testing.B) *experiments.Runner {
	b.Helper()
	r, err := experiments.NewRunner(benchOptions(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkTable1Catalog regenerates Table 1: the ten synthetic instances
// and their structural statistics.
func BenchmarkTable1Catalog(b *testing.B) {
	r := newBenchRunner(b)
	var pins int
	for i := 0; i < b.N; i++ {
		rows := r.Table1()
		pins = 0
		for _, row := range rows {
			pins += row.Stats.TotalNNZ
		}
	}
	b.ReportMetric(float64(pins), "pins")
}

// BenchmarkFig1BandwidthProfile regenerates Fig 1A: ring-profiling the
// simulated ARCHER machine's peer-to-peer bandwidth.
func BenchmarkFig1BandwidthProfile(b *testing.B) {
	r := newBenchRunner(b)
	for i := 0; i < b.N; i++ {
		res, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Bandwidth
	}
}

// BenchmarkFig1TrafficPattern regenerates Fig 1B: the benchmark's traffic
// matrix under a naive round-robin placement (the "mismatch" panel).
func BenchmarkFig1TrafficPattern(b *testing.B) {
	r := newBenchRunner(b)
	h, err := r.Instance("sparsine")
	if err != nil {
		b.Fatal(err)
	}
	parts, err := r.PartitionWith(experiments.AlgoRoundRobin, h)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := r.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Traffic
	}
	_ = parts
}

// BenchmarkFig3Refinement regenerates Fig 3: restreaming histories under the
// three refinement strategies on the four panel instances. The reported
// metric is the mean relative PC improvement of refinement-0.95 over
// no-refinement (paper: strictly positive on every panel).
func BenchmarkFig3Refinement(b *testing.B) {
	r := newBenchRunner(b)
	var improvement float64
	for i := 0; i < b.N; i++ {
		series, err := r.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		final := map[string]map[string]float64{}
		for _, s := range series {
			if final[s.Instance] == nil {
				final[s.Instance] = map[string]float64{}
			}
			final[s.Instance][s.Strategy] = s.FinalCommCost
		}
		var rels []float64
		for _, m := range final {
			if m["no-refinement"] > 0 {
				rels = append(rels, 1-m["refinement-0.95"]/m["no-refinement"])
			}
		}
		improvement = stats.Mean(rels)
	}
	b.ReportMetric(improvement*100, "%PC-improvement")
}

// BenchmarkFig4Quality regenerates Fig 4: hyperedge cut, SOED and
// partitioning communication cost for all ten instances under the three
// partitioners. Reported metric: the geometric-mean PC ratio of
// HyperPRAW-aware over Zoltan (paper: < 1 on every instance).
func BenchmarkFig4Quality(b *testing.B) {
	r := newBenchRunner(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := r.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		pc := map[string]map[string]float64{}
		for _, row := range rows {
			if pc[row.Hypergraph] == nil {
				pc[row.Hypergraph] = map[string]float64{}
			}
			pc[row.Hypergraph][row.Algorithm] = row.CommCost
		}
		var ratios []float64
		for _, m := range pc {
			if m[experiments.AlgoZoltan] > 0 {
				ratios = append(ratios, m[experiments.AlgoPRAWAware]/m[experiments.AlgoZoltan])
			}
		}
		ratio = stats.GeoMean(ratios)
	}
	b.ReportMetric(ratio, "PC-ratio-aware/zoltan")
}

// BenchmarkFig5Runtime regenerates Fig 5: the synthetic benchmark's
// simulated runtimes across three jobs and two iterations per job. Reported
// metric: the geometric-mean speedup of HyperPRAW-aware over Zoltan (the
// paper reports per-instance speedups of 1.3x–14x).
func BenchmarkFig5Runtime(b *testing.B) {
	r := newBenchRunner(b)
	var speedup float64
	for i := 0; i < b.N; i++ {
		res, err := r.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		var ss []float64
		for _, s := range res.Summaries {
			if s.Algorithm == experiments.AlgoPRAWAware && s.SpeedupVsZoltan > 0 {
				ss = append(ss, s.SpeedupVsZoltan)
			}
		}
		speedup = stats.GeoMean(ss)
	}
	b.ReportMetric(speedup, "geomean-speedup-vs-zoltan")
}

// BenchmarkFig6Patterns regenerates Fig 6: the benchmark traffic matrices of
// sparsine under the three partitioners against the bandwidth map. Reported
// metric: the mean physical cost per byte of the aware variant relative to
// Zoltan (paper: aware exploits fast links, so the ratio is < 1).
func BenchmarkFig6Patterns(b *testing.B) {
	r := newBenchRunner(b)
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := r.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		aware := experiments.MeanCostPerByte(res.Traffic[experiments.AlgoPRAWAware], r.PhysCost)
		zoltan := experiments.MeanCostPerByte(res.Traffic[experiments.AlgoZoltan], r.PhysCost)
		if zoltan > 0 {
			ratio = aware / zoltan
		}
	}
	b.ReportMetric(ratio, "costPerByte-aware/zoltan")
}
