package hyperpraw

import (
	"strings"
	"testing"
)

func buildTestHypergraph(t *testing.T) *Hypergraph {
	t.Helper()
	h, err := UnmarshalHMetis(strings.NewReader("3 5\n1 2 3\n2 4\n3 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestParseAlgorithm(t *testing.T) {
	cases := []struct {
		in      string
		algo    Algorithm
		mapping bool
		ok      bool
	}{
		{"aware", AlgorithmAware, false, true},
		{"aware-parallel", AlgorithmAwareParallel, false, true},
		{"oblivious", AlgorithmOblivious, false, true},
		{"basic", AlgorithmOblivious, false, true},
		{"multilevel", AlgorithmMultilevel, false, true},
		{"hierarchical", AlgorithmHierarchical, false, true},
		{"aware+mapping", AlgorithmAware, true, true},
		{"multilevel+mapping", AlgorithmMultilevel, true, true},
		{" aware ", AlgorithmAware, false, true},
		{"", "", false, false},
		{"+mapping", "", false, false},
		{"quantum", "", false, false},
	}
	for _, tc := range cases {
		algo, mapping, err := ParseAlgorithm(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("%q: err %v", tc.in, err)
			continue
		}
		if tc.ok && (algo != tc.algo || mapping != tc.mapping) {
			t.Errorf("%q: got (%q, %t), want (%q, %t)", tc.in, algo, mapping, tc.algo, tc.mapping)
		}
	}
}

func TestMachineSpec(t *testing.T) {
	spec := MachineSpec{}.Normalize()
	if spec.Kind != "archer" || spec.Cores != 64 || spec.Seed != 1 {
		t.Fatalf("defaults %+v", spec)
	}
	if (MachineSpec{Kind: "archer", Cores: 8, Seed: 2}).Key() == (MachineSpec{Kind: "cloud", Cores: 8, Seed: 2}).Key() {
		t.Fatal("distinct kinds share a key")
	}
	for _, kind := range []string{"archer", "cloud"} {
		m, err := MachineSpec{Kind: kind, Cores: 8}.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.NumCores() != 8 {
			t.Fatalf("%s: %d cores", kind, m.NumCores())
		}
	}
	if _, err := (MachineSpec{Kind: "abacus", Cores: 8}).Build(); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := (MachineSpec{Kind: "archer", Cores: 1}).Build(); err == nil {
		t.Fatal("1-core machine accepted")
	}
}

func TestServeOptionsBridge(t *testing.T) {
	var nilOpts *ServeOptions
	if nilOpts.Options() != nil {
		t.Fatal("nil ServeOptions should bridge to nil")
	}
	so := &ServeOptions{ImbalanceTolerance: 1.3, MaxIterations: 7, RefinementFactor: 0.9,
		DisableRefinement: true, Seed: 5, Workers: 3}
	o := so.Options()
	if o.ImbalanceTolerance != 1.3 || o.MaxIterations != 7 || o.RefinementFactor != 0.9 ||
		!o.DisableRefinement || o.Seed != 5 {
		t.Fatalf("bridge %+v", o)
	}
	// The bridged options are honoured by the partitioner.
	h := buildTestHypergraph(t)
	m, _ := MachineSpec{Kind: "archer", Cores: 4}.Build()
	env := Profile(m)
	_, res, err := PartitionAware(h, env, (&ServeOptions{MaxIterations: 3}).Options())
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 3 {
		t.Fatalf("iterations %d exceed bridged cap", res.Iterations)
	}
	if nilOpts.Key() != "opt:default" || so.Key() == nilOpts.Key() {
		t.Fatalf("keys: %q vs %q", so.Key(), nilOpts.Key())
	}
}

func TestFingerprintDeterministic(t *testing.T) {
	a := buildTestHypergraph(t)
	b := buildTestHypergraph(t)
	fa, fb := Fingerprint(a), Fingerprint(b)
	if fa != fb {
		t.Fatalf("equal hypergraphs fingerprint differently: %s vs %s", fa, fb)
	}
	if len(fa) != 32 {
		t.Fatalf("fingerprint length %d", len(fa))
	}
	// The name is excluded from the identity.
	b.SetName("renamed")
	if Fingerprint(b) != fa {
		t.Fatal("renaming changed the fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := "3 5\n1 2 3\n2 4\n3 5\n"
	variants := []string{
		"3 5\n1 2 3\n2 4\n3 4\n",                   // different pin
		"2 5\n1 2 3\n2 4\n",                        // fewer edges
		"3 6\n1 2 3\n2 4\n3 5\n",                   // extra (isolated) vertex
		"3 5 1\n2 1 2 3\n1 2 4\n1 3 5\n",           // edge weights
		"3 5 10\n1 2 3\n2 4\n3 5\n2\n1\n1\n1\n1\n", // vertex weights
	}
	h0, err := UnmarshalHMetis(strings.NewReader(base))
	if err != nil {
		t.Fatal(err)
	}
	f0 := Fingerprint(h0)
	for i, v := range variants {
		h, err := UnmarshalHMetis(strings.NewReader(v))
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if Fingerprint(h) == f0 {
			t.Errorf("variant %d shares the base fingerprint", i)
		}
	}
}

func TestMarshalHMetisRoundTrip(t *testing.T) {
	h := buildTestHypergraph(t)
	text, err := MarshalHMetis(h)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := UnmarshalHMetis(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(h) != Fingerprint(h2) {
		t.Fatal("marshal round trip changed the fingerprint")
	}
}
