package hyperpraw

import (
	"fmt"
	"io"
	"strings"

	"hyperpraw/internal/hypergraph"
)

// This file is the serving-side contract of the facade: the wire types the
// partitioning service (internal/service), its HTTP front end (cmd/hpserve)
// and the Go client (client) all share, plus the bridges that connect those
// wire types back to the library entry points — an Options bridge, a machine
// builder keyed by spec, and a deterministic hypergraph fingerprint used as
// a cache key.

// Algorithm names a partitioning strategy served by the partition service.
type Algorithm string

const (
	// AlgorithmAware is HyperPRAW with the profiled physical cost matrix.
	AlgorithmAware Algorithm = "aware"
	// AlgorithmAwareParallel is the parallel restreaming variant of
	// AlgorithmAware (valid but not run-to-run deterministic).
	AlgorithmAwareParallel Algorithm = "aware-parallel"
	// AlgorithmOblivious is HyperPRAW with the uniform cost matrix
	// (HyperPRAW-basic in the paper).
	AlgorithmOblivious Algorithm = "oblivious"
	// AlgorithmMultilevel is the Zoltan-style multilevel baseline.
	AlgorithmMultilevel Algorithm = "multilevel"
	// AlgorithmHierarchical is the Zoltan hierarchical baseline.
	AlgorithmHierarchical Algorithm = "hierarchical"
)

// MappingSuffix appended to an algorithm name requests a LibTopoMap-style
// topology mapping pass over the finished partition ("aware+mapping").
const MappingSuffix = "+mapping"

// ParseAlgorithm parses an algorithm name as it appears on the wire,
// accepting an optional "+mapping" suffix. "basic" is accepted as an alias
// for "oblivious".
func ParseAlgorithm(s string) (algo Algorithm, mapping bool, err error) {
	name := strings.TrimSpace(s)
	if strings.HasSuffix(name, MappingSuffix) {
		mapping = true
		name = strings.TrimSuffix(name, MappingSuffix)
	}
	if name == "basic" {
		name = string(AlgorithmOblivious)
	}
	switch Algorithm(name) {
	case AlgorithmAware, AlgorithmAwareParallel, AlgorithmOblivious,
		AlgorithmMultilevel, AlgorithmHierarchical:
		return Algorithm(name), mapping, nil
	case "":
		return "", false, fmt.Errorf("hyperpraw: empty algorithm")
	default:
		return "", false, fmt.Errorf("hyperpraw: unknown algorithm %q", s)
	}
}

// MachineSpec identifies a simulated machine on the wire. Kind selects the
// topology model ("archer" or "cloud"); Seed drives the deterministic noise.
type MachineSpec struct {
	Kind  string `json:"kind"`
	Cores int    `json:"cores"`
	Seed  uint64 `json:"seed,omitempty"`
}

// Normalize fills defaults: kind archer, 64 cores, seed 1.
func (m MachineSpec) Normalize() MachineSpec {
	if m.Kind == "" {
		m.Kind = "archer"
	}
	if m.Cores == 0 {
		m.Cores = 64
	}
	if m.Seed == 0 {
		m.Seed = 1
	}
	return m
}

// Key returns a deterministic cache key for the spec.
func (m MachineSpec) Key() string {
	m = m.Normalize()
	return fmt.Sprintf("%s/%d/s%d", m.Kind, m.Cores, m.Seed)
}

// Build constructs the machine the spec describes.
func (m MachineSpec) Build() (*Machine, error) {
	m = m.Normalize()
	if m.Cores < 2 {
		return nil, fmt.Errorf("hyperpraw: machine needs at least 2 cores, got %d", m.Cores)
	}
	switch m.Kind {
	case "archer":
		return NewArcherMachine(m.Cores, m.Seed), nil
	case "cloud":
		return NewCloudMachine(m.Cores, m.Seed), nil
	default:
		return nil, fmt.Errorf("hyperpraw: unknown machine kind %q (want archer or cloud)", m.Kind)
	}
}

// InstanceSpec asks the service to synthesise a Table 1 catalog instance.
type InstanceSpec struct {
	Name  string  `json:"name"`
	Scale float64 `json:"scale,omitempty"` // default 1.0 (paper size)
	Seed  uint64  `json:"seed,omitempty"`  // default 1
}

// Normalize fills defaults: scale 1.0, seed 1.
func (s InstanceSpec) Normalize() InstanceSpec {
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Key returns a deterministic cache key for the instance.
func (s InstanceSpec) Key() string {
	s = s.Normalize()
	return fmt.Sprintf("inst:%s:%g:s%d", s.Name, s.Scale, s.Seed)
}

// ServeOptions is the JSON-friendly mirror of Options used on the wire; the
// zero value means paper defaults. Workers only applies to aware-parallel.
type ServeOptions struct {
	ImbalanceTolerance float64 `json:"imbalance_tolerance,omitempty"`
	MaxIterations      int     `json:"max_iterations,omitempty"`
	RefinementFactor   float64 `json:"refinement_factor,omitempty"`
	DisableRefinement  bool    `json:"disable_refinement,omitempty"`
	// FrontierRestreaming enables the frontier-based refinement kernel for
	// the restreaming algorithms (see Options.FrontierRestreaming).
	FrontierRestreaming bool   `json:"frontier_restreaming,omitempty"`
	Seed                uint64 `json:"seed,omitempty"`
	Workers             int    `json:"workers,omitempty"`
	// DeadlineMS bounds the job's total time from submission (queue wait
	// included) in milliseconds; 0 means no deadline. A job still queued at
	// its deadline fails without running; a running restreaming job is
	// cancelled cooperatively at the next kernel pass so a stuck refinement
	// cannot hold a worker slot past its budget. The multilevel and
	// hierarchical baselines only check the deadline before starting.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Options bridges the wire options to the library Options consumed by the
// facade partitioners. A nil receiver yields nil (paper defaults).
func (o *ServeOptions) Options() *Options {
	if o == nil {
		return nil
	}
	return &Options{
		ImbalanceTolerance:  o.ImbalanceTolerance,
		MaxIterations:       o.MaxIterations,
		RefinementFactor:    o.RefinementFactor,
		DisableRefinement:   o.DisableRefinement,
		FrontierRestreaming: o.FrontierRestreaming,
		Seed:                o.Seed,
	}
}

// Key returns a deterministic cache key component for the options. Workers
// is excluded: it only selects the parallelism of aware-parallel, and
// callers that care (Request.resultKey) add it for that algorithm alone so
// identical requests under other algorithms share a cache entry.
func (o *ServeOptions) Key() string {
	if o == nil {
		return "opt:default"
	}
	if (ServeOptions{Workers: o.Workers}) == *o {
		return "opt:default"
	}
	// DeadlineMS joins the key: a deadline-cancelled run would differ from
	// an unconstrained one, so the two must not share a cache entry.
	return fmt.Sprintf("opt:%g:%d:%g:%t:f%t:s%d:dl%d",
		o.ImbalanceTolerance, o.MaxIterations, o.RefinementFactor,
		o.DisableRefinement, o.FrontierRestreaming, o.Seed, o.DeadlineMS)
}

// ServeBenchOptions is the JSON-friendly mirror of BenchOptions.
type ServeBenchOptions struct {
	MessageBytes int64   `json:"message_bytes,omitempty"`
	Steps        int     `json:"steps,omitempty"`
	Overlap      float64 `json:"overlap,omitempty"`
}

// Options bridges to the library BenchOptions. A nil receiver yields nil.
func (b *ServeBenchOptions) Options() *BenchOptions {
	if b == nil {
		return nil
	}
	return &BenchOptions{MessageBytes: b.MessageBytes, Steps: b.Steps, Overlap: b.Overlap}
}

// Key returns a deterministic cache key component for the bench options.
func (b *ServeBenchOptions) Key() string {
	if b == nil {
		return "bench:none"
	}
	return fmt.Sprintf("bench:%d:%d:%g", b.MessageBytes, b.Steps, b.Overlap)
}

// PartitionRequest is the body of POST /v1/partition. Exactly one of
// HypergraphID, Instance or HMetis supplies the hypergraph.
type PartitionRequest struct {
	// Algorithm names the partitioner, optionally with "+mapping".
	Algorithm string      `json:"algorithm"`
	Machine   MachineSpec `json:"machine"`
	// HypergraphID references a hypergraph previously committed through
	// POST /v1/hypergraphs. The job aliases the shared arena — the graph
	// bytes never travel with the request. This is the preferred way to
	// partition any graph used more than once, or too large to inline.
	HypergraphID string `json:"hypergraph_id,omitempty"`
	// Instance generates a catalog hypergraph on the server.
	Instance *InstanceSpec `json:"instance,omitempty"`
	// HMetis is an inline hypergraph upload in hMetis text format.
	//
	// Deprecated: prefer uploading once via POST /v1/hypergraphs and
	// referencing it by HypergraphID. Inline uploads remain supported
	// (and are interned into the same graph store) but resend the whole
	// document on every request.
	HMetis  string             `json:"hmetis,omitempty"`
	Options *ServeOptions      `json:"options,omitempty"`
	Bench   *ServeBenchOptions `json:"bench,omitempty"`
}

// HypergraphState is the lifecycle state of a hypergraph resource.
type HypergraphState string

const (
	// HypergraphUploading is a resumable upload session still accepting
	// parts; its ID lives in the "up-…" namespace.
	HypergraphUploading HypergraphState = "uploading"
	// HypergraphCommitted is a parsed, deduplicated arena; its ID is the
	// graph's fingerprint.
	HypergraphCommitted HypergraphState = "committed"
)

// HypergraphInfo is the wire representation of a hypergraph resource:
// either an in-flight upload session or a committed arena, as served by
// POST/GET /v1/hypergraphs.
type HypergraphInfo struct {
	// ID is the resource identifier. For a committed hypergraph it equals
	// the graph's Fingerprint, so uploading the same document twice (even
	// through different tiers) converges on one resource.
	ID    string          `json:"id"`
	State HypergraphState `json:"state"`
	// Name is the human-readable label supplied at upload time; it does
	// not participate in identity.
	Name string `json:"name,omitempty"`
	// Vertices/Edges/Pins/Bytes describe a committed arena (zero while
	// uploading). Bytes is the arena buffer size, the number that counts
	// against the store's -graph-cache-bytes budget.
	Vertices int   `json:"vertices,omitempty"`
	Edges    int   `json:"edges,omitempty"`
	Pins     int   `json:"pins,omitempty"`
	Bytes    int64 `json:"bytes,omitempty"`
	// Refs is how many live jobs currently alias the arena; a resource
	// with Refs > 0 refuses DELETE with 409 graph_referenced.
	Refs int `json:"refs,omitempty"`
	// Mapped reports the arena is mmap-backed rather than heap-held;
	// Resident that its buffer is currently in memory at all (an evicted
	// disk-backed arena stays known but reloads lazily on next use).
	Mapped   bool `json:"mapped,omitempty"`
	Resident bool `json:"resident,omitempty"`
	// PartsReceived/UploadedBytes describe an uploading session.
	PartsReceived int   `json:"parts_received,omitempty"`
	UploadedBytes int64 `json:"uploaded_bytes,omitempty"`
}

// HypergraphList is the body of GET /v1/hypergraphs.
type HypergraphList struct {
	Hypergraphs []HypergraphInfo `json:"hypergraphs"`
}

// CreateHypergraphRequest is the body of POST /v1/hypergraphs when
// opening a resumable upload session (as opposed to a one-shot ingest,
// which sends the hMetis document itself as a text/plain body).
type CreateHypergraphRequest struct {
	Name string `json:"name,omitempty"`
}

// Error codes carried in ErrorDetail.Code: a stable machine-readable
// taxonomy, so clients branch on codes instead of matching message
// strings or guessing from HTTP status alone.
const (
	// ErrCodeInvalidRequest: the request body or parameters failed
	// validation (HTTP 400/422).
	ErrCodeInvalidRequest = "invalid_request"
	// ErrCodeNotFound: the referenced resource does not exist (404).
	ErrCodeNotFound = "not_found"
	// ErrCodeMethodNotAllowed: the path exists but not for this verb (405).
	ErrCodeMethodNotAllowed = "method_not_allowed"
	// ErrCodeTooLarge: a request or upload exceeded a size bound (413).
	ErrCodeTooLarge = "too_large"
	// ErrCodeOverloaded: admission control or saturation shed the request;
	// retry after RetryAfterMS (429).
	ErrCodeOverloaded = "overloaded"
	// ErrCodeUploadState: the upload session is not in a state that allows
	// the operation (409) — e.g. a part PUT after commit.
	ErrCodeUploadState = "upload_state"
	// ErrCodeUploadIncomplete: commit refused because parts are missing
	// (409); the message names the missing part numbers.
	ErrCodeUploadIncomplete = "upload_incomplete"
	// ErrCodeGraphReferenced: DELETE refused because live jobs still
	// reference the hypergraph (409).
	ErrCodeGraphReferenced = "graph_referenced"
	// ErrCodeJobFailed: the job reached a terminal failed state (422 on
	// result fetch).
	ErrCodeJobFailed = "job_failed"
	// ErrCodeUnavailable: no backend could serve the request (502/503).
	ErrCodeUnavailable = "unavailable"
	// ErrCodeInternal: an unexpected server-side failure (500).
	ErrCodeInternal = "internal"
)

// ErrorDetail is the machine-readable error payload carried inside
// ErrorBody: a stable Code from the catalog above, a human Message, an
// optional retry hint, and the request's trace ID for cross-tier log
// correlation.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS is a backoff hint accompanying overloaded/unavailable
	// codes; 0 means no hint.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
	// Trace is the X-Hyperpraw-Trace ID of the failed request.
	Trace string `json:"trace,omitempty"`
}

// ErrorBody is the uniform error envelope both tiers emit for every
// non-2xx response: {"error":{"code":…,"message":…}}. Older clients
// that decoded {"error":"<string>"} still work against old servers; the
// Go client in client/ understands both shapes.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// JobStatus is the lifecycle state of a submitted partition job.
type JobStatus string

const (
	JobQueued  JobStatus = "queued"
	JobRunning JobStatus = "running"
	JobDone    JobStatus = "done"
	JobFailed  JobStatus = "failed"
)

// JobInfo is the wire representation of a job's state.
type JobInfo struct {
	ID          string      `json:"id"`
	Status      JobStatus   `json:"status"`
	Error       string      `json:"error,omitempty"`
	Algorithm   string      `json:"algorithm"`
	Machine     MachineSpec `json:"machine"`
	Hypergraph  string      `json:"hypergraph,omitempty"`
	Fingerprint string      `json:"fingerprint,omitempty"`
	SubmittedAt int64       `json:"submitted_at_unix_ms,omitempty"`
	StartedAt   int64       `json:"started_at_unix_ms,omitempty"`
	FinishedAt  int64       `json:"finished_at_unix_ms,omitempty"`
	// Backend is the hpserve base URL a gateway routed this job to; empty
	// when the job was submitted to an hpserve node directly.
	Backend string `json:"backend,omitempty"`
	// Persisted reports that the job is journaled in the backend's durable
	// store and will survive a backend restart: finished jobs keep serving
	// their results, unfinished ones re-enter the queue.
	Persisted bool `json:"persisted,omitempty"`
	// Stripped reports that the gateway no longer retains the job's wire
	// request (evicted by the retention cap): the job stays queryable but
	// can no longer fail over to another backend if its backend is lost.
	Stripped bool `json:"stripped,omitempty"`
	// Trace is the request's X-Hyperpraw-Trace ID: generated at the
	// gateway (or by hpserve for direct submissions) and carried through
	// every proxied call, so one request can be followed across tiers and
	// log lines.
	Trace string `json:"trace,omitempty"`
	// QueueWaitMS is how long the job sat queued before a worker picked it
	// up; ExecMS how long execution took. Both are stamped when the
	// respective phase ends, so clients see per-job timing without
	// scraping /metrics.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	ExecMS      float64 `json:"exec_ms,omitempty"`
}

// JobsPage is the body of GET /v1/jobs: one page of the job table in
// submission order. NextAfter, when non-empty, is the cursor for the next
// page (pass it back as ?after=); an empty NextAfter means the listing
// is exhausted. Requests without ?limit= get the whole table and no
// cursor — the pre-pagination wire shape, byte-compatible for old
// clients.
type JobsPage struct {
	Jobs      []JobInfo `json:"jobs"`
	NextAfter string    `json:"next_after,omitempty"`
}

// BatchRequest is the body of POST /v1/partition/batch: many partition
// jobs submitted in one round trip. Jobs are independent — one invalid
// entry does not reject the rest.
type BatchRequest struct {
	Jobs []PartitionRequest `json:"jobs"`
}

// BatchItem is the per-job outcome of a batch submission: either the
// accepted job's info or the validation/submission error, never both.
type BatchItem struct {
	Job   *JobInfo `json:"job,omitempty"`
	Error string   `json:"error,omitempty"`
}

// BatchResponse is the body returned by POST /v1/partition/batch; Jobs[i]
// answers BatchRequest.Jobs[i].
type BatchResponse struct {
	Jobs     []BatchItem `json:"jobs"`
	Accepted int         `json:"accepted"`
	Rejected int         `json:"rejected"`
}

// IterationPoint is the wire mirror of one restreaming iteration's
// statistics (core IterationStats): recorded in JobResult.History and
// streamed live as ProgressEvents.
type IterationPoint struct {
	Iteration   int     `json:"iteration"`
	CommCost    float64 `json:"comm_cost"`
	Imbalance   float64 `json:"imbalance"`
	Alpha       float64 `json:"alpha"`
	Moves       int     `json:"moves"`
	InTolerance bool    `json:"in_tolerance"`
}

// PointFromStats converts library iteration statistics to their wire form.
func PointFromStats(st IterationStats) IterationPoint {
	return IterationPoint{
		Iteration:   st.Iteration,
		CommCost:    st.CommCost,
		Imbalance:   st.Imbalance,
		Alpha:       st.Alpha,
		Moves:       st.Moves,
		InTolerance: st.InTolerance,
	}
}

// ProgressEvent is one frame of the GET /v1/jobs/{id}/events SSE stream.
// Seq numbers frames from 1 per job so a reconnecting consumer can skip
// frames it has already seen. Non-final events carry an IterationPoint;
// the final event instead carries the job's terminal status (and error,
// when it failed).
type ProgressEvent struct {
	JobID string `json:"job_id"`
	Seq   int    `json:"seq"`
	IterationPoint
	Final  bool      `json:"final,omitempty"`
	Status JobStatus `json:"status,omitempty"`
	Error  string    `json:"error,omitempty"`
}

// BackendStatus is one backend's state in a gateway's health report.
type BackendStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Breaker is the backend's circuit-breaker state: "closed" (serving),
	// "open" (ejected, cooling down) or "half-open" (one probe in flight
	// decides between the two).
	Breaker string `json:"breaker,omitempty"`
	// Fails counts consecutive failed probes or proxied calls; it resets to
	// zero on the first success after re-admission.
	Fails int `json:"fails,omitempty"`
	// Saturated reports that the backend's last /healthz probe showed its
	// queue above the gateway's spill watermark (or the backend answered
	// 429 since): the gateway spills new work to the next-ranked backend
	// until a probe shows the queue back under the watermark.
	Saturated bool `json:"saturated,omitempty"`
	// Queued is the backend queue depth observed by the last health probe.
	Queued int `json:"queued,omitempty"`
	// Jobs is how many of the gateway's retained jobs are currently routed
	// to this backend.
	Jobs int `json:"jobs"`
	// Durable reports that the backend advertises a durable job store
	// (its /healthz Durable field): the gateway waits out short outages of
	// such a backend instead of immediately failing its jobs over, because
	// a restart recovers them more cheaply than a recomputation.
	Durable bool `json:"durable,omitempty"`
}

// MemberSpec is the body of POST /v1/cluster/members: a backend
// announcing itself to the gateway's member table. hpserve sends it on
// startup (-announce) and again on every heartbeat to renew its lease.
type MemberSpec struct {
	// URL is the member's base URL as the gateway should dial it; it is
	// the member's identity in the table.
	URL string `json:"url"`
	// Durable declares that the member journals jobs to a durable store;
	// the gateway keys its restart-recovery behaviour off it until the
	// first health probe confirms or corrects the claim.
	Durable bool `json:"durable,omitempty"`
	// TTLMS is the requested lease duration in milliseconds; 0 accepts
	// the gateway's default. A member that misses every heartbeat within
	// its lease is ejected and its jobs are drained to peers.
	TTLMS int64 `json:"ttl_ms,omitempty"`
}

// MemberInfo is one member's record in the gateway's cluster view,
// returned by the /v1/cluster/members routes.
type MemberInfo struct {
	URL string `json:"url"`
	// Static marks a member seeded from the -backends flag: it has no
	// lease and survives until removed explicitly.
	Static  bool `json:"static,omitempty"`
	Durable bool `json:"durable,omitempty"`
	Healthy bool `json:"healthy"`
	// Breaker is the member's circuit-breaker state ("closed", "open",
	// "half-open").
	Breaker   string `json:"breaker,omitempty"`
	Saturated bool   `json:"saturated,omitempty"`
	Queued    int    `json:"queued,omitempty"`
	// LeaseRemainingMS is how long until the member's registration lapses
	// without a heartbeat; omitted for static members.
	LeaseRemainingMS int64 `json:"lease_remaining_ms,omitempty"`
}

// MemberList is the body of GET /v1/cluster/members: the gateway's
// member table at one membership epoch.
type MemberList struct {
	// Epoch increments on every membership change (registration,
	// deregistration, lease expiry); state changes on existing members do
	// not bump it.
	Epoch   uint64       `json:"epoch"`
	Members []MemberInfo `json:"members"`
}

// GatewayHealth is the body of an hpgate GET /healthz.
type GatewayHealth struct {
	Status   string          `json:"status"`
	Backends []BackendStatus `json:"backends"`
	Jobs     int             `json:"jobs"`
	// Epoch is the current membership epoch; Members is the cluster view
	// behind the Backends report (lease and registration detail).
	Epoch   uint64       `json:"epoch,omitempty"`
	Members []MemberInfo `json:"members,omitempty"`
	// ResultCache reports the gateway's own result cache (enabled by
	// hpgate -result-cache-bytes); nil when disabled.
	ResultCache *CacheStats `json:"result_cache,omitempty"`
	// Telemetry is the tier's self-description snapshot (uptime, build,
	// job totals); nil when the gateway runs without a metrics registry.
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
}

// TelemetrySnapshot is the telemetry summary embedded in both tiers'
// /healthz bodies: enough to see at a glance how long the process has been
// up, what build it is, and how much work it has done, without scraping
// /metrics.
type TelemetrySnapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version,omitempty"`
	// JobsSubmitted/JobsCompleted/JobsFailed are process-lifetime totals
	// (completed excludes failed). For a gateway these count submissions
	// accepted and terminal outcomes observed at the gateway tier.
	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
}

// JobResult is the wire representation of a finished job's payload,
// returned by GET /v1/jobs/{id}/result.
type JobResult struct {
	Parts      []int32       `json:"parts"`
	K          int           `json:"k"`
	Report     QualityReport `json:"report"`
	Iterations int           `json:"iterations,omitempty"`
	StopReason string        `json:"stop_reason,omitempty"`
	// History holds the per-iteration statistics of the restreaming run
	// (the service records them for every restreaming job so progress can
	// be replayed to late or cache-hitting SSE subscribers). Empty for the
	// multilevel and hierarchical baselines, which do not restream.
	History   []IterationPoint `json:"history,omitempty"`
	Bench     *BenchResult     `json:"bench,omitempty"`
	ElapsedMS float64          `json:"elapsed_ms"`
	// EnvCacheHit reports whether the machine's profiled Environment was
	// served from cache; ResultCacheHit whether the whole partition was.
	EnvCacheHit    bool `json:"env_cache_hit"`
	ResultCacheHit bool `json:"result_cache_hit"`
	// Kernel holds the streaming kernel's activity counters for the run
	// that computed this result (nil for the non-restreaming baselines and
	// for results computed before the counters existed). A cache-hitting
	// job returns the computing run's counters.
	Kernel *KernelStats `json:"kernel,omitempty"`
}

// CacheStats is a point-in-time snapshot of one service cache.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Bytes     int64  `json:"bytes,omitempty"`
	MaxBytes  int64  `json:"max_bytes,omitempty"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// ServeHealth is the body of GET /healthz.
type ServeHealth struct {
	Status      string     `json:"status"`
	Workers     int        `json:"workers"`
	QueueDepth  int        `json:"queue_depth"`
	Queued      int        `json:"queued"`
	Running     int        `json:"running"`
	Jobs        int        `json:"jobs"`
	EnvCache    CacheStats `json:"env_cache"`
	ResultCache CacheStats `json:"result_cache"`
	// InflightBytes is the total inline-upload payload held by queued and
	// running jobs; MaxInflightBytes the admission bound (0 = unlimited).
	InflightBytes    int64 `json:"inflight_bytes,omitempty"`
	MaxInflightBytes int64 `json:"max_inflight_bytes,omitempty"`
	// Durable reports whether the service journals jobs to a durable store
	// (hpserve -store); StoredJobs is how many jobs that store holds. An
	// hpgate gateway keys its restart-recovery behavior off Durable.
	Durable    bool `json:"durable,omitempty"`
	StoredJobs int  `json:"stored_jobs,omitempty"`
	// Telemetry is the tier's self-description snapshot (uptime, build,
	// job totals); nil when the service runs without a metrics registry.
	Telemetry *TelemetrySnapshot `json:"telemetry,omitempty"`
}

// Fingerprint returns a deterministic 128-bit hex digest of the hypergraph's
// structure and weights (the name is excluded). Two hypergraphs with equal
// vertex sets, hyperedges, pin sets and weights share a fingerprint, making
// it usable as a cache key for partition results — and, since the graph
// store deduplicates arenas by the same digest, as the resource ID of a
// committed hypergraph.
func Fingerprint(h *Hypergraph) string {
	return hypergraph.Fingerprint(h)
}

// MarshalHMetis serialises h to hMetis text, the inline upload format of
// PartitionRequest.HMetis.
func MarshalHMetis(h *Hypergraph) (string, error) {
	var sb strings.Builder
	if err := hypergraph.WriteHMetis(&sb, h); err != nil {
		return "", err
	}
	return sb.String(), nil
}

// UnmarshalHMetis parses hMetis text (the counterpart of MarshalHMetis).
func UnmarshalHMetis(r io.Reader) (*Hypergraph, error) {
	return hypergraph.ReadHMetis(r)
}
