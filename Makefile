GO ?= go
# bash for pipefail: the bench pipeline must fail when `go test -bench`
# fails, not when only the JSON conversion does.
SHELL := /bin/bash

.PHONY: build test race vet bench bench-compare bins race-bins serve cluster e2e chaos metrics-lint clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# bench runs the streaming-kernel benchmarks (exhaustive baseline vs
# touched-only scan in the same run, uniform + profiled + hierarchical
# matrices) plus the parallel-superstep worker sweeps, all with -benchmem,
# and emits BENCH_core.json — the machine-readable trajectory point future
# PRs compare against. The parallel families run at 30x: their kernel is
# zero-alloc, but the Go runtime occasionally re-allocates channel-park
# sudogs after a GC clears its caches, and at 3x that one-time noise can
# round up to 1 allocs/op; 30 iterations amortise it back below the
# integer floor without inflating the job (a warm superstep is ~10^-1 s).
bench:
	set -o pipefail; \
	{ $(GO) test -run '^$$' -bench 'BenchmarkStream' -benchtime 3x -benchmem ./internal/core/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkParallel(Aware|Uniform)' -benchtime 30x -benchmem ./internal/core/; } \
		| $(GO) run ./cmd/benchfmt -o BENCH_core.json

# bench-compare re-runs the smoke benchmarks (same sampling as the
# committed baseline) and fails if any exhaustive/fast speedup family or
# parallel_speedup curve collapsed by more than 1.5x against
# BENCH_core.json, or if a benchmark the baseline records at zero
# allocs/op started allocating — the CI guard against fast-path reverts
# and worker pools that quietly serialise.
bench-compare:
	set -o pipefail; \
	{ $(GO) test -run '^$$' -bench 'BenchmarkStream' -benchtime 3x -benchmem ./internal/core/ && \
	  $(GO) test -run '^$$' -bench 'BenchmarkParallel(Aware|Uniform)' -benchtime 30x -benchmem ./internal/core/; } \
		| $(GO) run ./cmd/benchfmt -o BENCH_new.json -compare BENCH_core.json -threshold 1.5

bins:
	$(GO) build -o bin/hpserve ./cmd/hpserve
	$(GO) build -o bin/hpgate ./cmd/hpgate

serve:
	$(GO) run ./cmd/hpserve -addr :8080

# cluster boots a local 2-backend sharded deployment: an hpgate gateway
# on :8080 with an empty member table, and two hpserve nodes that join it
# by self-registration (-announce) — no -backends flag anywhere. Ctrl-C
# stops all three.
cluster: bins
	@trap 'kill 0' EXIT INT TERM; \
	./bin/hpserve -addr 127.0.0.1:8081 -announce http://127.0.0.1:8080 & \
	./bin/hpserve -addr 127.0.0.1:8082 -announce http://127.0.0.1:8080 & \
	./bin/hpgate -addr 127.0.0.1:8080

# e2e runs the full chaos-case catalog (examples/cluster -list shows it):
# serving-path baselines plus every fault-injection case; non-zero exit on
# any failed check (the CI end-to-end job).
e2e: bins
	$(GO) run ./examples/cluster -hpserve bin/hpserve -hpgate bin/hpgate

race-bins:
	$(GO) build -race -o bin/hpserve.race ./cmd/hpserve
	$(GO) build -race -o bin/hpgate.race ./cmd/hpgate

# chaos is the CI robustness gate: the smoke-tagged chaos cases (backend
# SIGKILL mid-stream, torn-WAL restart recovery, breaker state walk,
# cache stampede, saturation -> spill -> 429 waterfall, ...) against
# race-instrumented binaries, so injected faults that expose data races
# fail the run too. Every case also lints both tiers' /metrics.
chaos: race-bins
	$(GO) run ./examples/cluster -smoke -hpserve bin/hpserve.race -hpgate bin/hpgate.race

# metrics-lint checks Prometheus text exposition: with no URLS it lints a
# built-in registry exercising every instrument kind (a CI smoke of the
# exposition writer); pass URLS="http://host:port ..." to lint live
# /metrics endpoints.
metrics-lint:
	$(GO) run ./cmd/metricslint $(if $(URLS),$(URLS),-selfcheck)

clean:
	$(GO) clean ./...
	rm -rf bin BENCH_new.json
