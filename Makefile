GO ?= go

.PHONY: build test vet serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

serve:
	$(GO) run ./cmd/hpserve -addr :8080

clean:
	$(GO) clean ./...
