GO ?= go
# bash for pipefail: the bench pipeline must fail when `go test -bench`
# fails, not when only the JSON conversion does.
SHELL := /bin/bash

.PHONY: build test vet bench serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	@fmt_out=$$(gofmt -l .); if [ -n "$$fmt_out" ]; then \
		echo "gofmt needed on:"; echo "$$fmt_out"; exit 1; fi

# bench runs the streaming-kernel benchmarks (exhaustive baseline vs
# touched-only scan in the same run) and emits BENCH_core.json, the
# machine-readable trajectory point future PRs compare against.
bench:
	set -o pipefail; \
	$(GO) test -run '^$$' -bench 'BenchmarkStream' -benchtime 3x ./internal/core/ \
		| $(GO) run ./cmd/benchfmt -o BENCH_core.json

serve:
	$(GO) run ./cmd/hpserve -addr :8080

clean:
	$(GO) clean ./...
