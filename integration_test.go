package hyperpraw

import (
	"os"
	"path/filepath"
	"testing"

	"hyperpraw/internal/bench"
	"hyperpraw/internal/hypergraph"
)

// TestFileBasedPipeline exercises the full tool-chain a downstream user
// would run: generate an instance, write it to disk, read it back, partition
// it three ways, persist the partition vectors, reload them and verify the
// evaluations agree.
func TestFileBasedPipeline(t *testing.T) {
	dir := t.TempDir()
	machine := NewArcherMachine(32, 1)
	env := Profile(machine)

	h := GenerateInstance("ABACUS_shell_hd", 0.02, 1)
	hgPath := filepath.Join(dir, "abacus.hgr")
	if err := SaveHypergraph(hgPath, h); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadHypergraph(hgPath)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPins() != h.NumPins() {
		t.Fatal("hypergraph changed across disk round trip")
	}

	algos := map[string]func() ([]int32, error){
		"zoltan": func() ([]int32, error) { return PartitionMultilevel(loaded, 32, nil) },
		"basic": func() ([]int32, error) {
			p, _, err := PartitionBasic(loaded, env, nil)
			return p, err
		},
		"aware": func() ([]int32, error) {
			p, _, err := PartitionAware(loaded, env, nil)
			return p, err
		},
	}
	for name, part := range algos {
		parts, err := part()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		before := Evaluate(loaded, parts, env)

		pPath := filepath.Join(dir, name+".parts")
		if err := SavePartitionVector(pPath, parts); err != nil {
			t.Fatal(err)
		}
		reloaded, err := LoadPartitionVector(pPath)
		if err != nil {
			t.Fatal(err)
		}
		after := Evaluate(loaded, reloaded, env)
		if before.HyperedgeCut != after.HyperedgeCut || before.CommCost != after.CommCost {
			t.Fatalf("%s: evaluation changed across partition round trip", name)
		}
	}
}

// TestSimulatorsAgreeOnAlgorithmRanking cross-validates the two network
// models: whatever order the aggregate model assigns to the three
// partitioners' runtimes, the message-level discrete-event simulator must
// broadly agree (it is the ground-truth-ish model).
func TestSimulatorsAgreeOnAlgorithmRanking(t *testing.T) {
	machine := NewArcherMachine(32, 1)
	env := Profile(machine)
	h := GenerateInstance("ABACUS_shell_hd", 0.02, 3)

	zoltan, err := PartitionMultilevel(h, 32, nil)
	if err != nil {
		t.Fatal(err)
	}
	aware, _, err := PartitionAware(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}

	cfg := bench.Config{MessageBytes: 4096, Steps: 2}
	agg := func(parts []int32) float64 {
		res, err := bench.Run(machine, h, parts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}
	ev := func(parts []int32) float64 {
		res, err := bench.RunEventLevel(machine, h, parts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.MakespanSec
	}

	aggRatio := agg(aware) / agg(zoltan)
	evRatio := ev(aware) / ev(zoltan)
	// Same side of 1.0, or both within 15% of parity: the models must not
	// tell opposite stories.
	sameSide := (aggRatio < 1) == (evRatio < 1)
	nearParity := aggRatio > 0.85 && aggRatio < 1.15 && evRatio > 0.85 && evRatio < 1.15
	if !sameSide && !nearParity {
		t.Fatalf("models disagree: aggregate aware/zoltan %.3f vs event-level %.3f", aggRatio, evRatio)
	}
}

// TestWeightedInstanceEndToEnd runs the whole pipeline on a hypergraph with
// non-uniform vertex and edge weights.
func TestWeightedInstanceEndToEnd(t *testing.T) {
	b := hypergraph.NewBuilder(0)
	for i := 0; i < 300; i++ {
		b.AddWeightedEdge(int64(1+i%5), i%100, (i*7)%100, (i*13)%100)
	}
	for v := 0; v < 100; v++ {
		b.SetVertexWeight(v, int64(1+v%4))
	}
	h := b.Build()
	h.SetName("weighted")

	machine := NewArcherMachine(16, 2)
	env := Profile(machine)
	parts, _, err := PartitionAware(h, env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep := Evaluate(h, parts, env)
	if rep.Imbalance > 1.5 {
		t.Fatalf("weighted imbalance %g", rep.Imbalance)
	}
	if _, err := SimulateBenchmark(machine, h, parts, nil); err != nil {
		t.Fatal(err)
	}
}

// TestResultsDirectoryArtefactsParse spot-checks that the CSV artefacts the
// experiment runner writes are well-formed (header + at least one row).
func TestResultsDirectoryArtefactsParse(t *testing.T) {
	// Regenerate a tiny table1 into a temp dir rather than depending on a
	// pre-existing results/ directory.
	dir := t.TempDir()
	machine := NewArcherMachine(16, 1)
	_ = machine
	// Reuse the public API only: hgen via GenerateInstance and manual CSV is
	// already covered elsewhere; here just assert the quickstart-style flow
	// produces a loadable artefact.
	h := GenerateInstance("sparsine", 0.002, 1)
	path := filepath.Join(dir, "x.hgr")
	if err := SaveHypergraph(path, h); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil || info.Size() == 0 {
		t.Fatalf("artefact missing or empty: %v", err)
	}
}
