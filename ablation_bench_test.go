// Ablation benchmarks for the design choices DESIGN.md calls out: the
// refinement factor (paper §6.1/§7), refinement patience, stream order,
// architecture-aware partitioning vs post-hoc topology mapping (related
// work, LibTopoMap), parallel restreaming (§8.2 future work), the network
// model's overlap assumption, and machine heterogeneity. Each reports the
// quality or speed consequence of the choice as a custom metric.
package hyperpraw

import (
	"fmt"
	"testing"

	"hyperpraw/internal/bench"
	"hyperpraw/internal/core"
	"hyperpraw/internal/hgen"
	"hyperpraw/internal/mapping"
	"hyperpraw/internal/metrics"
	"hyperpraw/internal/netsim"
	"hyperpraw/internal/profile"
	"hyperpraw/internal/topology"
)

// ablationSetup bundles the fixed machine/instance pair the ablations vary
// around: a 64-core ARCHER-like machine and the 2cubes_sphere FEM instance
// at 1% scale.
type ablationSetup struct {
	machine *topology.Machine
	bwCost  [][]float64
	uniCost [][]float64
	h       *Hypergraph
}

func newAblationSetup(b *testing.B) *ablationSetup {
	b.Helper()
	machine := topology.MustNew(topology.Archer(), 64, 1)
	bw := profile.RingProfile(machine, profile.DefaultConfig())
	spec, _ := hgen.SpecByName("2cubes_sphere")
	h := hgen.Generate(spec.Scaled(0.01), 1)
	return &ablationSetup{
		machine: machine,
		bwCost:  profile.CostMatrix(bw),
		uniCost: profile.UniformCost(64),
		h:       h,
	}
}

// BenchmarkAblationRefinementFactor sweeps the refinement-phase α update
// factor; the paper picked 0.95 experimentally (§7). The metric is the final
// PC(P) of the returned partition.
func BenchmarkAblationRefinementFactor(b *testing.B) {
	s := newAblationSetup(b)
	for _, factor := range []float64{0.80, 0.90, 0.95, 1.00, 1.10} {
		b.Run(fmt.Sprintf("factor=%.2f", factor), func(b *testing.B) {
			var pc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(s.bwCost)
				cfg.RefinementFactor = factor
				pr, err := core.New(s.h, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pc = pr.Run().FinalCommCost
			}
			b.ReportMetric(pc, "final-PC")
		})
	}
}

// BenchmarkAblationPatience varies how many non-improving refinement
// iterations are tolerated (the paper's Algorithm 1 is patience 1).
func BenchmarkAblationPatience(b *testing.B) {
	s := newAblationSetup(b)
	for _, patience := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("patience=%d", patience), func(b *testing.B) {
			var pc float64
			var iters int
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(s.bwCost)
				cfg.Patience = patience
				pr, err := core.New(s.h, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res := pr.Run()
				pc = res.FinalCommCost
				iters = res.Iterations
			}
			b.ReportMetric(pc, "final-PC")
			b.ReportMetric(float64(iters), "iterations")
		})
	}
}

// BenchmarkAblationStreamOrder compares the paper's natural visiting order
// with per-stream shuffling.
func BenchmarkAblationStreamOrder(b *testing.B) {
	s := newAblationSetup(b)
	for _, shuffled := range []bool{false, true} {
		name := "natural"
		if shuffled {
			name = "shuffled"
		}
		b.Run(name, func(b *testing.B) {
			var pc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig(s.bwCost)
				cfg.ShuffledOrder = shuffled
				cfg.Seed = 7
				pr, err := core.New(s.h, cfg)
				if err != nil {
					b.Fatal(err)
				}
				pc = pr.Run().FinalCommCost
			}
			b.ReportMetric(pc, "final-PC")
		})
	}
}

// BenchmarkAblationMappingVsAware pits architecture-aware *streaming*
// against architecture-oblivious streaming followed by topology *mapping*
// (the LibTopoMap strategy of the paper's related work). The metric is the
// simulated benchmark runtime.
func BenchmarkAblationMappingVsAware(b *testing.B) {
	s := newAblationSetup(b)
	cfg := bench.DefaultConfig()

	runtimeOf := func(b *testing.B, parts []int32) float64 {
		res, err := bench.Run(s.machine, s.h, parts, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.MakespanSec
	}

	b.Run("basic+mapping", func(b *testing.B) {
		var rt float64
		for i := 0; i < b.N; i++ {
			parts, err := core.Partition(s.h, core.DefaultConfig(s.uniCost))
			if err != nil {
				b.Fatal(err)
			}
			mapped, err := mapping.MapPartition(s.h, parts, s.machine, s.bwCost, mapping.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			rt = runtimeOf(b, mapped)
		}
		b.ReportMetric(rt, "sim-runtime-s")
	})
	b.Run("aware", func(b *testing.B) {
		var rt float64
		for i := 0; i < b.N; i++ {
			parts, err := core.Partition(s.h, core.DefaultConfig(s.bwCost))
			if err != nil {
				b.Fatal(err)
			}
			rt = runtimeOf(b, parts)
		}
		b.ReportMetric(rt, "sim-runtime-s")
	})
}

// BenchmarkAblationParallelWorkers measures the parallel restreaming variant
// (§8.2) at several worker counts; quality (final PC) is reported alongside
// wall time so the speed/quality trade is visible.
func BenchmarkAblationParallelWorkers(b *testing.B) {
	s := newAblationSetup(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var pc float64
			for i := 0; i < b.N; i++ {
				res, err := core.PartitionParallel(s.h, core.DefaultConfig(s.bwCost), workers)
				if err != nil {
					b.Fatal(err)
				}
				pc = res.FinalCommCost
			}
			b.ReportMetric(pc, "final-PC")
		})
	}
}

// BenchmarkAblationOverlapModel varies the network model's send/receive
// overlap assumption; rankings between partitioners must be insensitive to
// it, absolute runtimes are not.
func BenchmarkAblationOverlapModel(b *testing.B) {
	s := newAblationSetup(b)
	parts, err := core.Partition(s.h, core.DefaultConfig(s.bwCost))
	if err != nil {
		b.Fatal(err)
	}
	traffic, err := bench.BuildTraffic(s.h, parts, 64, bench.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	for _, overlap := range []float64{0, 0.5, 1} {
		b.Run(fmt.Sprintf("overlap=%.1f", overlap), func(b *testing.B) {
			var rt float64
			model := netsim.AggregateModel{Overlap: overlap}
			for i := 0; i < b.N; i++ {
				rt = model.Estimate(s.machine, traffic).MakespanSec
			}
			b.ReportMetric(rt, "sim-runtime-s")
		})
	}
}

// BenchmarkAblationHeterogeneity runs the aware-vs-basic comparison on a
// flat (uniform-bandwidth) machine and on the tiered ARCHER model: on a
// flat machine the aware variant has nothing to exploit and the runtime
// ratio should approach 1.
func BenchmarkAblationHeterogeneity(b *testing.B) {
	spec, _ := hgen.SpecByName("2cubes_sphere")
	h := hgen.Generate(spec.Scaled(0.01), 1)
	cases := []struct {
		name string
		spec topology.Spec
	}{
		{"flat", topology.Uniform(2000)},
		{"archer", topology.Archer()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			machine := topology.MustNew(tc.spec, 64, 1)
			bw := profile.RingProfile(machine, profile.DefaultConfig())
			physCost := profile.CostMatrix(bw)
			uniCost := profile.UniformCost(64)
			var ratio float64
			for i := 0; i < b.N; i++ {
				basic, err := core.Partition(h, core.DefaultConfig(uniCost))
				if err != nil {
					b.Fatal(err)
				}
				aware, err := core.Partition(h, core.DefaultConfig(physCost))
				if err != nil {
					b.Fatal(err)
				}
				rb, err := bench.Run(machine, h, basic, bench.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				ra, err := bench.Run(machine, h, aware, bench.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				if ra.MakespanSec > 0 {
					ratio = rb.MakespanSec / ra.MakespanSec
				}
			}
			b.ReportMetric(ratio, "basic/aware-speedup")
		})
	}
}

// BenchmarkAblationMachineTiers runs the aware partitioner across machine
// profiles of increasing hierarchy depth — flat, two-tier, three-tier
// (all profiled noiselessly, so their cost matrices carry exact tiers)
// and the noisy ARCHER profile — measuring wall time and final PC. This
// is the ablation behind the cost-tier index: the kernel detects each
// matrix's structure (uniform / exact blocks / noisy blocks) and picks
// the candidate-scan strategy per matrix, so partitioning should get
// *faster*, not slower, as the machine gets more hierarchical.
func BenchmarkAblationMachineTiers(b *testing.B) {
	spec, _ := hgen.SpecByName("2cubes_sphere")
	h := hgen.Generate(spec.Scaled(0.01), 1)
	noiseless := profile.Config{MessageBytes: 512 << 10, Repeats: 1, NoiseSigma: 0, Seed: 1}
	tier2 := topology.Spec{Name: "tier2", Levels: []topology.Level{
		{Name: "blade", Fanout: 8, BandwidthMBs: 6000, LatencySec: 1e-6},
		{Name: "rest", Fanout: 1 << 30, BandwidthMBs: 800, LatencySec: 5e-6},
	}}
	tier3 := topology.Spec{Name: "tier3", Levels: []topology.Level{
		{Name: "socket", Fanout: 8, BandwidthMBs: 8000, LatencySec: 0.4e-6},
		{Name: "node", Fanout: 4, BandwidthMBs: 3000, LatencySec: 1e-6},
		{Name: "rest", Fanout: 1 << 30, BandwidthMBs: 700, LatencySec: 5e-6},
	}}
	cases := []struct {
		name  string
		spec  topology.Spec
		pcfg  profile.Config
		cores int
	}{
		{"flat", topology.Uniform(2000), noiseless, 64},
		{"tier2", tier2, noiseless, 64},
		{"tier3", tier3, noiseless, 64},
		{"archer-noisy", topology.Archer(), profile.DefaultConfig(), 64},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			machine := topology.MustNew(tc.spec, tc.cores, 1)
			cost := profile.CostMatrix(profile.RingProfile(machine, tc.pcfg))
			var pc float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				parts, err := core.Partition(h, core.DefaultConfig(cost))
				if err != nil {
					b.Fatal(err)
				}
				pc = metrics.CommCost(h, parts, cost)
			}
			b.ReportMetric(pc, "final-PC")
		})
	}
}

// BenchmarkPartitionerWallTime measures raw partitioning throughput of the
// three algorithms (the timing ablation of §8.2: streaming approaches are
// "frequently faster to execute").
func BenchmarkPartitionerWallTime(b *testing.B) {
	s := newAblationSetup(b)
	b.Run("zoltan-multilevel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := multilevelPartition(s.h, 64); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hyperpraw-basic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Partition(s.h, core.DefaultConfig(s.uniCost)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hyperpraw-aware", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Partition(s.h, core.DefaultConfig(s.bwCost)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func multilevelPartition(h *Hypergraph, k int) ([]int32, error) {
	return PartitionMultilevel(h, k, nil)
}
